#include "crypto/bignum.h"

#include <gtest/gtest.h>

namespace scab::crypto {
namespace {

TEST(Bignum, ZeroBasics) {
  Bignum z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z, Bignum(0));
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_TRUE(z.to_bytes_be().empty());
}

TEST(Bignum, SmallArithmetic) {
  EXPECT_EQ(Bignum(2) + Bignum(3), Bignum(5));
  EXPECT_EQ(Bignum(10) - Bignum(4), Bignum(6));
  EXPECT_EQ(Bignum(7) * Bignum(6), Bignum(42));
  EXPECT_EQ(Bignum(100) / Bignum(7), Bignum(14));
  EXPECT_EQ(Bignum(100) % Bignum(7), Bignum(2));
}

TEST(Bignum, SubtractionUnderflowThrows) {
  EXPECT_THROW(Bignum(3) - Bignum(4), std::underflow_error);
}

TEST(Bignum, DivisionByZeroThrows) {
  EXPECT_THROW(Bignum(3) / Bignum(0), std::domain_error);
  EXPECT_THROW(Bignum(3) % Bignum(0), std::domain_error);
}

TEST(Bignum, CarryPropagation) {
  const Bignum max64(~uint64_t{0});
  const Bignum sum = max64 + Bignum(1);
  EXPECT_EQ(sum.bit_length(), 65u);
  EXPECT_EQ(sum - Bignum(1), max64);
  EXPECT_EQ(sum.to_hex(), "10000000000000000");
}

TEST(Bignum, HexRoundTrip) {
  const std::string hex = "deadbeef0123456789abcdef00ff00ff00ff00ff00ff00ff";
  const Bignum v = Bignum::from_hex(hex);
  EXPECT_EQ(v.to_hex(), hex);
}

TEST(Bignum, BytesRoundTripFixedWidth) {
  const Bignum v = Bignum::from_hex("abcd");
  const Bytes wide = v.to_bytes_be(8);
  EXPECT_EQ(hex_encode(wide), "000000000000abcd");
  EXPECT_EQ(Bignum::from_bytes_be(wide), v);
  EXPECT_THROW(v.to_bytes_be(1), std::length_error);
}

TEST(Bignum, LeadingZeroBytesNormalize) {
  const Bytes raw = {0x00, 0x00, 0x01, 0x02};
  EXPECT_EQ(Bignum::from_bytes_be(raw), Bignum(0x0102));
}

TEST(Bignum, Comparisons) {
  EXPECT_LT(Bignum(1), Bignum(2));
  EXPECT_GT(Bignum::from_hex("100000000000000000"), Bignum(~uint64_t{0}));
  EXPECT_EQ(Bignum::from_hex("ff"), Bignum(255));
}

TEST(Bignum, Shifts) {
  const Bignum v = Bignum::from_hex("123456789abcdef0");
  EXPECT_EQ((v << 4).to_hex(), "123456789abcdef00");
  EXPECT_EQ((v >> 4).to_hex(), "123456789abcdef");
  EXPECT_EQ((v << 64) >> 64, v);
  EXPECT_EQ((v << 67) >> 67, v);
  EXPECT_TRUE((v >> 200).is_zero());
  EXPECT_EQ(v << 0, v);
  EXPECT_EQ(v >> 0, v);
}

TEST(Bignum, BitAccess) {
  const Bignum v = Bignum::from_hex("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.bit_length(), 64u);
}

// ---------------------------------------------------------------------------
// Property-style sweeps over deterministic random inputs.

class BignumPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  Drbg rng_{to_bytes("bignum-prop-" + std::to_string(GetParam()))};

  Bignum random_bits(std::size_t max_bits) {
    const std::size_t bits = 1 + rng_.uniform(max_bits);
    const Bignum bound = Bignum(1) << bits;
    return random_below(bound, rng_);
  }
};

TEST_P(BignumPropertyTest, AddSubInverse) {
  for (int i = 0; i < 20; ++i) {
    const Bignum a = random_bits(512);
    const Bignum b = random_bits(512);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
  }
}

TEST_P(BignumPropertyTest, AdditionCommutesAndAssociates) {
  for (int i = 0; i < 20; ++i) {
    const Bignum a = random_bits(300), b = random_bits(300), c = random_bits(300);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

TEST_P(BignumPropertyTest, MultiplicationDistributes) {
  for (int i = 0; i < 20; ++i) {
    const Bignum a = random_bits(256), b = random_bits(256), c = random_bits(256);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * b, b * a);
  }
}

TEST_P(BignumPropertyTest, DivModIdentity) {
  for (int i = 0; i < 30; ++i) {
    const Bignum a = random_bits(1024);
    Bignum b = random_bits(512);
    if (b.is_zero()) b = Bignum(1);
    const auto [q, r] = divmod(a, b);
    EXPECT_LT(r, b);
    EXPECT_EQ(q * b + r, a);
  }
}

TEST_P(BignumPropertyTest, DivModStressesAddBackBranch) {
  // Dividends crafted as q*b + (b-1) with q near limb boundaries hit the
  // rare Knuth-D correction path more often than uniform inputs.
  for (int i = 0; i < 20; ++i) {
    Bignum b = random_bits(256);
    if (b < Bignum(2)) b = Bignum(2);
    const Bignum q = random_bits(256);
    const Bignum a = q * b + (b - Bignum(1));
    const auto [q2, r2] = divmod(a, b);
    EXPECT_EQ(q2, q);
    EXPECT_EQ(r2, b - Bignum(1));
  }
}

TEST_P(BignumPropertyTest, ShiftsAreMulDivByPowersOfTwo) {
  for (int i = 0; i < 20; ++i) {
    const Bignum a = random_bits(300);
    const std::size_t s = rng_.uniform(130);
    EXPECT_EQ(a << s, a * (Bignum(1) << s));
    EXPECT_EQ(a >> s, a / (Bignum(1) << s));
  }
}

TEST_P(BignumPropertyTest, BytesRoundTrip) {
  for (int i = 0; i < 20; ++i) {
    const Bignum a = random_bits(777);
    EXPECT_EQ(Bignum::from_bytes_be(a.to_bytes_be()), a);
    EXPECT_EQ(Bignum::from_hex(a.to_hex()), a);
  }
}

TEST_P(BignumPropertyTest, ModExpMatchesNaive) {
  const Bignum m = random_bits(64) + Bignum(2);
  for (int i = 0; i < 5; ++i) {
    const Bignum base = random_bits(64);
    const uint64_t e = rng_.uniform(200);
    Bignum naive(1);
    for (uint64_t k = 0; k < e; ++k) naive = mod_mul(naive, base, m);
    EXPECT_EQ(mod_exp(base, Bignum(e), m), naive) << "e=" << e;
  }
}

TEST_P(BignumPropertyTest, ModExpLaws) {
  const Bignum m = random_bits(256) + Bignum(3);
  const Bignum base = random_bits(200);
  const Bignum e1 = random_bits(100);
  const Bignum e2 = random_bits(100);
  // base^(e1+e2) == base^e1 * base^e2 (mod m)
  EXPECT_EQ(mod_exp(base, e1 + e2, m),
            mod_mul(mod_exp(base, e1, m), mod_exp(base, e2, m), m));
}

TEST_P(BignumPropertyTest, ModAddSubInverse) {
  Bignum m = random_bits(256);
  if (m < Bignum(2)) m = Bignum(2);
  const Bignum a = random_below(m, rng_);
  const Bignum b = random_below(m, rng_);
  EXPECT_EQ(mod_sub(mod_add(a, b, m), b, m), a);
  EXPECT_LT(mod_add(a, b, m), m);
  EXPECT_LT(mod_sub(a, b, m), m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BignumPropertyTest, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Knuth Algorithm D add-back branch.  The two-limb qhat refinement makes
// the trial digit exact for 2-limb divisors; with >= 3 limbs it can still
// overshoot by one, with probability ~2/2^64 on random inputs — uniform
// sweeps never reach the correction.  These pairs are crafted to force it
// (divisor top limb exactly b/2, a tiny low limb, and a dividend sitting
// at quotient digit b-1 with a maximal remainder), and the instrumentation
// counter (divmod_addback_count) proves the branch actually ran.

// Little-endian 64-bit limbs -> Bignum.
Bignum from_limbs(const std::vector<uint64_t>& limbs) {
  Bignum v;
  for (std::size_t i = limbs.size(); i-- > 0;) {
    v = (v << 64) + Bignum(limbs[i]);
  }
  return v;
}

TEST(BignumDivMod, AddBackBranchFiresOnCraftedPairs) {
  const uint64_t kHalf = uint64_t{1} << 63;
  const uint64_t kMax = ~uint64_t{0};
  // Each case: divisor limbs (LE), quotient digit, remainder offset; the
  // dividend is q*v + (v - offset).
  struct Case {
    std::vector<uint64_t> v_limbs;
    uint64_t q, offset;
  };
  const std::vector<Case> cases = {
      {{1, 0, kHalf}, kMax, 1},
      {{1, 0, kHalf}, kMax - 3, 2},
      {{2, 0, kHalf}, kMax - 1, 1},
  };
  for (const auto& c : cases) {
    const Bignum v = from_limbs(c.v_limbs);
    const Bignum u = v * Bignum(c.q) + (v - Bignum(c.offset));
    const uint64_t before = divmod_addback_count();
    const auto [q, r] = divmod(u, v);
    EXPECT_GT(divmod_addback_count(), before)
        << "pair no longer reaches the add-back correction";
    EXPECT_EQ(q, Bignum(c.q));
    EXPECT_EQ(r, v - Bignum(c.offset));
    EXPECT_EQ(q * v + r, u);
  }
}

TEST(BignumDivMod, AddBackPreservesDivModIdentityUnderSweep) {
  // Sweep the neighbourhood of the triggering family: whether or not each
  // individual pair fires the correction, the division identity must hold.
  const uint64_t kHalf = uint64_t{1} << 63;
  const uint64_t kMax = ~uint64_t{0};
  uint64_t fired = 0;
  for (uint64_t lo = 0; lo < 4; ++lo) {
    for (uint64_t dq = 0; dq < 4; ++dq) {
      const Bignum v = from_limbs({lo, 0, kHalf});
      for (const Bignum& u :
           {v * Bignum(kMax - dq) + (v - Bignum(1)),
            v * Bignum(kMax - dq) + (v - Bignum(2)), v * Bignum(kMax - dq)}) {
        const uint64_t before = divmod_addback_count();
        const auto [q, r] = divmod(u, v);
        fired += divmod_addback_count() - before;
        EXPECT_LT(r, v);
        EXPECT_EQ(q * v + r, u);
      }
    }
  }
  EXPECT_GT(fired, 0u);
}

// ---------------------------------------------------------------------------

TEST(BignumPrimality, KnownSmallPrimes) {
  Drbg rng(to_bytes("prime"));
  for (uint64_t p : {2, 3, 5, 7, 11, 13, 101, 257, 65537}) {
    EXPECT_TRUE(is_probably_prime(Bignum(p), rng)) << p;
  }
  for (uint64_t c : {1, 4, 6, 9, 15, 91, 100, 65535}) {
    EXPECT_FALSE(is_probably_prime(Bignum(c), rng)) << c;
  }
}

TEST(BignumPrimality, CarmichaelNumbersRejected) {
  Drbg rng(to_bytes("carmichael"));
  for (uint64_t c : {561, 1105, 1729, 2465, 2821, 6601, 8911}) {
    EXPECT_FALSE(is_probably_prime(Bignum(c), rng)) << c;
  }
}

TEST(BignumPrimality, MersennePrime) {
  Drbg rng(to_bytes("mersenne"));
  // 2^61 - 1 is prime (the Shamir field modulus used by src/secretshare).
  EXPECT_TRUE(is_probably_prime((Bignum(1) << 61) - Bignum(1), rng));
  // 2^67 - 1 is famously composite (Cole, 1903).
  EXPECT_FALSE(is_probably_prime((Bignum(1) << 67) - Bignum(1), rng));
}

TEST(BignumPrimality, RandomPrimeHasExactBitLength) {
  Drbg rng(to_bytes("gen"));
  for (std::size_t bits : {16u, 33u, 64u}) {
    const Bignum p = random_prime(bits, rng);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(is_probably_prime(p, rng));
  }
}

TEST(BignumPrimality, SafePrimeStructure) {
  Drbg rng(to_bytes("safe"));
  const Bignum p = random_safe_prime(48, rng);
  EXPECT_EQ(p.bit_length(), 48u);
  EXPECT_TRUE(is_probably_prime(p, rng));
  EXPECT_TRUE(is_probably_prime((p - Bignum(1)) >> 1, rng));
}

TEST(BignumModular, FermatInverse) {
  Drbg rng(to_bytes("inv"));
  const Bignum p = random_prime(128, rng);
  for (int i = 0; i < 10; ++i) {
    const Bignum a = random_nonzero_below(p, rng);
    const Bignum inv = mod_inv_prime(a, p);
    EXPECT_EQ(mod_mul(a, inv, p), Bignum(1));
  }
  EXPECT_THROW(mod_inv_prime(Bignum(0), p), std::domain_error);
  EXPECT_THROW(mod_inv_prime(p, p), std::domain_error);
}

TEST(BignumModular, JacobiMatchesEulerCriterionOnPrimes) {
  // For odd prime p the Jacobi symbol is the Legendre symbol, which Euler's
  // criterion computes as a^((p-1)/2) mod p.  This is exactly the use in
  // ModGroup::is_element, where Jacobi replaces the full modexp.
  Drbg rng(to_bytes("jacobi"));
  for (const std::size_t bits : {std::size_t{32}, std::size_t{128}}) {
    const Bignum p = random_prime(bits, rng);
    const Bignum half = (p - Bignum(1)) >> 1;
    for (int i = 0; i < 20; ++i) {
      const Bignum a = random_nonzero_below(p, rng);
      const Bignum euler = mod_exp(a, half, p);
      const int expected = euler == Bignum(1) ? 1 : -1;
      EXPECT_EQ(jacobi(a, p), expected);
      // Periodicity in the top argument.
      EXPECT_EQ(jacobi(a + p, p), expected);
    }
    EXPECT_EQ(jacobi(Bignum(0), p), 0);
    EXPECT_EQ(jacobi(p, p), 0);
    EXPECT_EQ(jacobi(Bignum(1), p), 1);
  }
}

TEST(BignumModular, JacobiKnownValuesAndCompositeModulus) {
  // Known table values: (2/15) = 1, (7/15) = -1, (1001/9907) = -1 (classic
  // textbook example), and gcd(a, n) > 1 gives 0.
  EXPECT_EQ(jacobi(Bignum(2), Bignum(15)), 1);
  EXPECT_EQ(jacobi(Bignum(7), Bignum(15)), -1);
  EXPECT_EQ(jacobi(Bignum(1001), Bignum(9907)), -1);
  EXPECT_EQ(jacobi(Bignum(5), Bignum(15)), 0);
  EXPECT_THROW(jacobi(Bignum(3), Bignum(8)), std::domain_error);
}

TEST(BignumRandom, RandomBelowIsInRange) {
  Drbg rng(to_bytes("below"));
  const Bignum bound = Bignum::from_hex("10000000000000000000001");
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(random_below(bound, rng), bound);
  }
  EXPECT_TRUE(random_below(Bignum(1), rng).is_zero());
  EXPECT_EQ(random_nonzero_below(Bignum(2), rng), Bignum(1));
  EXPECT_THROW(random_below(Bignum(0), rng), std::domain_error);
}

}  // namespace
}  // namespace scab::crypto
