#include "crypto/aead.h"

#include <gtest/gtest.h>

namespace scab::crypto {
namespace {

class AeadTest : public ::testing::Test {
 protected:
  Drbg rng_{to_bytes("aead-test-seed")};
  Bytes key_ = Drbg(to_bytes("aead-key-seed")).generate(kAeadKeySize);
};

TEST_F(AeadTest, SealOpenRoundTrip) {
  const Bytes ad = to_bytes("header");
  const Bytes msg = to_bytes("the secret share payload");
  const Bytes box = aead_seal(key_, ad, msg, rng_);
  EXPECT_EQ(box.size(), msg.size() + kAeadOverhead);
  const auto opened = aead_open(key_, ad, box);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST_F(AeadTest, EmptyPlaintextAndAd) {
  const Bytes box = aead_seal(key_, {}, {}, rng_);
  const auto opened = aead_open(key_, {}, box);
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST_F(AeadTest, RejectsCiphertextTampering) {
  const Bytes ad = to_bytes("ad");
  Bytes box = aead_seal(key_, ad, to_bytes("msg"), rng_);
  for (std::size_t i = 0; i < box.size(); ++i) {
    Bytes tampered = box;
    tampered[i] ^= 0x01;
    EXPECT_FALSE(aead_open(key_, ad, tampered).has_value()) << "byte " << i;
  }
}

TEST_F(AeadTest, RejectsWrongAssociatedData) {
  const Bytes box = aead_seal(key_, to_bytes("ad1"), to_bytes("msg"), rng_);
  EXPECT_FALSE(aead_open(key_, to_bytes("ad2"), box).has_value());
  EXPECT_FALSE(aead_open(key_, {}, box).has_value());
}

TEST_F(AeadTest, RejectsWrongMacKey) {
  const Bytes box = aead_seal(key_, {}, to_bytes("msg"), rng_);
  Bytes other_key = key_;
  other_key[40] ^= 1;  // flips a byte of the MAC half (bytes 32..63)
  EXPECT_FALSE(aead_open(other_key, {}, box).has_value());
}

TEST_F(AeadTest, WrongEncKeyGarblesPlaintext) {
  // Flipping an encryption-key byte leaves the MAC valid (encrypt-then-MAC
  // authenticates the ciphertext), but the recovered plaintext must differ.
  const Bytes msg = to_bytes("msg");
  const Bytes box = aead_seal(key_, {}, msg, rng_);
  Bytes other_key = key_;
  other_key[0] ^= 1;
  const auto opened = aead_open(other_key, {}, box);
  ASSERT_TRUE(opened.has_value());
  EXPECT_NE(*opened, msg);
}

TEST_F(AeadTest, RejectsTruncatedBox) {
  const Bytes box = aead_seal(key_, {}, to_bytes("m"), rng_);
  EXPECT_FALSE(aead_open(key_, {}, BytesView(box.data(), box.size() - 1)).has_value());
  EXPECT_FALSE(aead_open(key_, {}, Bytes{}).has_value());
  EXPECT_FALSE(aead_open(key_, {}, Bytes(kAeadOverhead - 1, 0)).has_value());
}

TEST_F(AeadTest, NoncesAreFresh) {
  const Bytes msg = to_bytes("same message");
  const Bytes b1 = aead_seal(key_, {}, msg, rng_);
  const Bytes b2 = aead_seal(key_, {}, msg, rng_);
  EXPECT_NE(b1, b2);
}

TEST_F(AeadTest, RejectsBadKeySize) {
  Drbg rng(to_bytes("x"));
  EXPECT_THROW(aead_seal(Bytes(32, 0), {}, {}, rng), std::invalid_argument);
  EXPECT_THROW(aead_open(Bytes(63, 0), {}, Bytes(64, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace scab::crypto
