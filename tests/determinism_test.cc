// Reproducibility guarantees: the whole point of the simulator substrate is
// that every run is bit-deterministic given the seed (DESIGN.md §4,
// "Determinism first").  These tests pin that property for full protocol
// stacks — if an unordered container or a wall-clock sneaks into a code
// path, these are the tests that catch it.
#include <gtest/gtest.h>

#include "apps/kvstore.h"
#include "bft/client.h"
#include "bft/replica.h"
#include "causal/harness.h"

namespace scab::causal {
namespace {

struct RunSignature {
  uint64_t completed = 0;
  sim::SimTime finished_at = 0;
  sim::SimTime total_latency = 0;
  uint64_t events = 0;
  uint64_t messages = 0;
  Bytes last_result;

  bool operator==(const RunSignature&) const = default;
};

RunSignature run_stack(Protocol protocol, Engine engine, uint64_t seed,
                       uint32_t worker_threads = 0) {
  ClusterOptions opts;
  opts.protocol = protocol;
  opts.engine = engine;
  opts.bft = bft::BftConfig::for_f(1);
  opts.profile = sim::NetworkProfile::lan();
  opts.costs = sim::CostModel::default_symmetric_era();
  opts.num_clients = 2;
  opts.seed = seed;
  opts.worker_threads = worker_threads;
  opts.service_factory = [] { return std::make_unique<apps::KvStore>(); };
  Cluster cluster(opts);

  for (uint32_t c = 0; c < 2; ++c) {
    cluster.client(c).run_closed_loop(
        [c](uint64_t i) {
          return apps::KvStore::put(std::to_string(c) + "/" + std::to_string(i),
                                    to_bytes("v" + std::to_string(i)));
        },
        6);
  }
  cluster.sim().run_while([&] {
    return (cluster.client(0).completed_ops() >= 6 &&
            cluster.client(1).completed_ops() >= 6) ||
           cluster.sim().now() > 600 * sim::kSecond;
  });

  RunSignature sig;
  sig.completed =
      cluster.client(0).completed_ops() + cluster.client(1).completed_ops();
  sig.finished_at = cluster.sim().now();
  sig.total_latency =
      cluster.client(0).total_latency() + cluster.client(1).total_latency();
  sig.events = cluster.sim().events_processed();
  sig.messages = cluster.net().messages_sent();
  sig.last_result = cluster.client(0).last_result();
  return sig;
}

class DeterminismTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(DeterminismTest, SameSeedSameExecutionToTheNanosecond) {
  const RunSignature a = run_stack(GetParam(), Engine::kPbftEngine, 77);
  const RunSignature b = run_stack(GetParam(), Engine::kPbftEngine, 77);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.completed, 12u);
}

TEST_P(DeterminismTest, WorkerThreadKnobDoesNotPerturbSimRuns) {
  // The crypto worker-pool knob (ClusterOptions::worker_threads, DESIGN.md
  // §12) is a no-op under the simulator: SimHost keeps the WorkerPool
  // default, which runs offloaded jobs and their continuations inline on
  // the owner's executor.  A sim run with threads=8 must therefore replay
  // BIT-IDENTICALLY against threads=0 — the property that lets the same
  // protocol sources run deterministic repro and multicore deployment.
  const RunSignature a = run_stack(GetParam(), Engine::kPbftEngine, 77,
                                   /*worker_threads=*/0);
  const RunSignature b = run_stack(GetParam(), Engine::kPbftEngine, 77,
                                   /*worker_threads=*/8);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.completed, 12u);
}

TEST_P(DeterminismTest, DifferentSeedsDifferentTimings) {
  const RunSignature a = run_stack(GetParam(), Engine::kPbftEngine, 77);
  const RunSignature b = run_stack(GetParam(), Engine::kPbftEngine, 78);
  // Both complete the workload, but jitter/coins land differently.
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_NE(a.finished_at, b.finished_at);
}

INSTANTIATE_TEST_SUITE_P(Protocols, DeterminismTest,
                         ::testing::Values(Protocol::kPbft, Protocol::kCp0,
                                           Protocol::kCp1, Protocol::kCp2,
                                           Protocol::kCp3),
                         [](const auto& info) {
                           return std::string(protocol_name(info.param));
                         });

TEST(Determinism, AsyncEngineIsDeterministicToo) {
  // The async engine adds coin flips and epoch races — all seeded.
  const RunSignature a = run_stack(Protocol::kCp2, Engine::kAsyncEngine, 5);
  const RunSignature b = run_stack(Protocol::kCp2, Engine::kAsyncEngine, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.completed, 12u);
}

}  // namespace
}  // namespace scab::causal
