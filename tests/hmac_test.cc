#include "crypto/hmac.h"

#include <gtest/gtest.h>

namespace scab::crypto {
namespace {

// RFC 4231 test vectors for HMAC-SHA-256.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Bytes tag = hmac_sha256(key, to_bytes("Hi There"));
  EXPECT_EQ(hex_encode(tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Bytes tag = hmac_sha256(to_bytes("Jefe"),
                                to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(hex_encode(tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  const Bytes tag = hmac_sha256(key, data);
  EXPECT_EQ(hex_encode(tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  // Keys longer than the block size are hashed first.
  const Bytes key(131, 0xaa);
  const Bytes tag = hmac_sha256(
      key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(hex_encode(tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, TruncationTakesPrefix) {
  const Bytes key = to_bytes("k");
  const Bytes data = to_bytes("d");
  const Bytes full = hmac_sha256(key, data);
  const Bytes trunc = hmac_sha256_trunc(key, data, 8);
  ASSERT_EQ(trunc.size(), 8u);
  EXPECT_TRUE(std::equal(trunc.begin(), trunc.end(), full.begin()));
}

TEST(Hmac, VerifyAcceptsValidTag) {
  const Bytes key = to_bytes("secret");
  const Bytes data = to_bytes("message");
  EXPECT_TRUE(hmac_verify(key, data, hmac_sha256(key, data)));
  EXPECT_TRUE(hmac_verify(key, data, hmac_sha256_trunc(key, data, 8)));
}

TEST(Hmac, VerifyRejectsTamperedTagOrData) {
  const Bytes key = to_bytes("secret");
  const Bytes data = to_bytes("message");
  Bytes tag = hmac_sha256(key, data);
  tag[0] ^= 1;
  EXPECT_FALSE(hmac_verify(key, data, tag));
  tag[0] ^= 1;
  EXPECT_FALSE(hmac_verify(key, to_bytes("messagf"), tag));
  EXPECT_FALSE(hmac_verify(to_bytes("secres"), data, tag));
}

TEST(Hmac, VerifyRejectsDegenerateTags) {
  const Bytes key = to_bytes("k");
  EXPECT_FALSE(hmac_verify(key, to_bytes("d"), Bytes{}));
  EXPECT_FALSE(hmac_verify(key, to_bytes("d"), Bytes(33, 0)));
}

TEST(Hmac, DistinctKeysDistinctTags) {
  const Bytes data = to_bytes("same data");
  EXPECT_NE(hmac_sha256(to_bytes("k1"), data), hmac_sha256(to_bytes("k2"), data));
}

}  // namespace
}  // namespace scab::crypto
