#include "common/bytes.h"

#include <gtest/gtest.h>

namespace scab {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes b = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(hex_encode(b), "0001abff7f");
  EXPECT_EQ(hex_decode("0001abff7f"), b);
  EXPECT_EQ(hex_decode("0001ABFF7F"), b);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(hex_encode(Bytes{}), "");
  EXPECT_TRUE(hex_decode("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);
  EXPECT_THROW(hex_decode("0g"), std::invalid_argument);
}

TEST(Bytes, StringRoundTrip) {
  const std::string s = "hello \x01\x02 world";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, Concat) {
  const Bytes a = {1, 2}, b = {}, c = {3};
  EXPECT_EQ(concat(a, b, c), (Bytes{1, 2, 3}));
  EXPECT_TRUE(concat(Bytes{}, Bytes{}).empty());
}

TEST(Bytes, Append) {
  Bytes dst = {1};
  append(dst, Bytes{2, 3});
  EXPECT_EQ(dst, (Bytes{1, 2, 3}));
}

TEST(Bytes, CtEqual) {
  EXPECT_TRUE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(Bytes, XorInplace) {
  Bytes a = {0xff, 0x0f, 0x00};
  xor_inplace(a, Bytes{0x0f, 0x0f, 0xaa});
  EXPECT_EQ(a, (Bytes{0xf0, 0x00, 0xaa}));
  EXPECT_THROW(xor_inplace(a, Bytes{1}), std::invalid_argument);
}

}  // namespace
}  // namespace scab
