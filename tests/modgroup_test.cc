#include "crypto/modgroup.h"

#include <gtest/gtest.h>

namespace scab::crypto {
namespace {

ModGroup small_group() {
  Drbg rng(to_bytes("modgroup-test"));
  return ModGroup::generate(64, rng);
}

TEST(ModGroup, GeneratedGroupStructure) {
  Drbg rng(to_bytes("gen"));
  const ModGroup grp = ModGroup::generate(48, rng);
  EXPECT_EQ((grp.q() << 1) + Bignum(1), grp.p());
  EXPECT_TRUE(is_probably_prime(grp.p(), rng));
  EXPECT_TRUE(is_probably_prime(grp.q(), rng));
  EXPECT_TRUE(grp.is_element(grp.g()));
  EXPECT_TRUE(grp.is_element(grp.gbar()));
}

TEST(ModGroup, GeneratorHasOrderQ) {
  const ModGroup grp = small_group();
  EXPECT_EQ(grp.exp(grp.g(), grp.q()), Bignum(1));
  EXPECT_NE(grp.g(), Bignum(1));
}

TEST(ModGroup, ExponentArithmetic) {
  const ModGroup grp = small_group();
  Drbg rng(to_bytes("exp"));
  const Bignum a = grp.random_exponent(rng);
  const Bignum b = grp.random_exponent(rng);
  // g^a * g^b == g^(a+b mod q)
  const Bignum lhs = grp.mul(grp.exp(grp.g(), a), grp.exp(grp.g(), b));
  const Bignum rhs = grp.exp(grp.g(), mod_add(a, b, grp.q()));
  EXPECT_EQ(lhs, rhs);
}

TEST(ModGroup, InverseMultipliesToIdentity) {
  const ModGroup grp = small_group();
  Drbg rng(to_bytes("inv"));
  const Bignum x = grp.exp(grp.g(), grp.random_exponent(rng));
  EXPECT_EQ(grp.mul(x, grp.inv(x)), Bignum(1));
}

TEST(ModGroup, IsElementRejectsOutsiders) {
  const ModGroup grp = small_group();
  EXPECT_FALSE(grp.is_element(Bignum(0)));
  EXPECT_FALSE(grp.is_element(grp.p()));
  EXPECT_FALSE(grp.is_element(grp.p() + Bignum(5)));
  // p-1 has order 2, not q (it is -1, a non-residue since p = 3 mod 4).
  EXPECT_FALSE(grp.is_element(grp.p() - Bignum(1)));
  EXPECT_TRUE(grp.is_element(Bignum(1)));
}

TEST(ModGroup, HashToElementLandsInGroup) {
  const ModGroup grp = small_group();
  for (int i = 0; i < 10; ++i) {
    const Bignum e = grp.hash_to_element(to_bytes("seed-" + std::to_string(i)));
    EXPECT_TRUE(grp.is_element(e));
  }
}

TEST(ModGroup, HashToElementDeterministic) {
  const ModGroup grp = small_group();
  EXPECT_EQ(grp.hash_to_element(to_bytes("x")), grp.hash_to_element(to_bytes("x")));
  EXPECT_NE(grp.hash_to_element(to_bytes("x")), grp.hash_to_element(to_bytes("y")));
}

TEST(ModGroup, HashToExponentInRange) {
  const ModGroup grp = small_group();
  for (int i = 0; i < 20; ++i) {
    const Bignum e = grp.hash_to_exponent(to_bytes("c-" + std::to_string(i)));
    EXPECT_LT(e, grp.q());
  }
  EXPECT_EQ(grp.hash_to_exponent(to_bytes("a")), grp.hash_to_exponent(to_bytes("a")));
}

TEST(ModGroup, GbarIndependentOfG) {
  const ModGroup grp = small_group();
  EXPECT_NE(grp.gbar(), grp.g());
  EXPECT_NE(grp.gbar(), Bignum(1));
}

TEST(ModGroup, RejectsNonSafePrimeShape) {
  EXPECT_THROW(ModGroup(Bignum(23), Bignum(7), Bignum(2)), std::invalid_argument);
}

// The fixed 1024-bit MODP group is expensive to validate, so its full
// primality check lives here (runs once) rather than in the constructor.
TEST(ModGroupSlow, Modp1024IsWellFormed) {
  const ModGroup grp = ModGroup::modp_1024();
  EXPECT_EQ(grp.p().bit_length(), 1024u);
  EXPECT_EQ((grp.q() << 1) + Bignum(1), grp.p());
  Drbg rng(to_bytes("modp1024"));
  EXPECT_TRUE(is_probably_prime(grp.p(), rng, 8));
  EXPECT_TRUE(is_probably_prime(grp.q(), rng, 8));
  EXPECT_TRUE(grp.is_element(grp.g()));
  EXPECT_TRUE(grp.is_element(grp.gbar()));
  EXPECT_EQ(grp.element_bytes(), 128u);
}

TEST(ModGroupSlow, Modp512IsWellFormed) {
  const ModGroup grp = ModGroup::modp_512();
  EXPECT_EQ(grp.p().bit_length(), 512u);
  EXPECT_EQ((grp.q() << 1) + Bignum(1), grp.p());
  Drbg rng(to_bytes("modp512"));
  EXPECT_TRUE(is_probably_prime(grp.p(), rng, 16));
  EXPECT_TRUE(is_probably_prime(grp.q(), rng, 16));
  EXPECT_TRUE(grp.is_element(grp.g()));
  EXPECT_TRUE(grp.is_element(grp.gbar()));
}

}  // namespace
}  // namespace scab::crypto
