#include "bft/envelope.h"

#include <gtest/gtest.h>

#include "bft/keyring.h"

namespace scab::bft {
namespace {

class EnvelopeTest : public ::testing::Test {
 protected:
  EnvelopeTest() : keys_(to_bytes("envelope-test-seed"), {0, 1, 2, 100}) {}
  KeyRing keys_;
};

TEST_F(EnvelopeTest, SealOpenRoundTrip) {
  const Bytes body = to_bytes("payload");
  const Bytes wire = seal_envelope(keys_, Channel::kBft, 0, 1, body);
  const auto env = open_envelope(keys_, 1, wire);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->channel, Channel::kBft);
  EXPECT_EQ(env->sender, 0u);
  EXPECT_EQ(env->body, body);
}

TEST_F(EnvelopeTest, WrongReceiverRejects) {
  const Bytes wire = seal_envelope(keys_, Channel::kBft, 0, 1, to_bytes("x"));
  EXPECT_FALSE(open_envelope(keys_, 2, wire).has_value());
}

TEST_F(EnvelopeTest, TamperedBodyRejects) {
  Bytes wire = seal_envelope(keys_, Channel::kReply, 2, 100, to_bytes("reply"));
  for (std::size_t i = 0; i < wire.size(); ++i) {
    Bytes bad = wire;
    bad[i] ^= 0x01;
    EXPECT_FALSE(open_envelope(keys_, 100, bad).has_value()) << "byte " << i;
  }
}

TEST_F(EnvelopeTest, SenderSpoofingRejects) {
  // Node 2 seals a message, then someone rewrites the sender field to 0;
  // the MAC binds the sender so the receiver rejects it.
  Bytes wire = seal_envelope(keys_, Channel::kBft, 2, 1, to_bytes("x"));
  Reader r(wire);
  r.u8();
  EXPECT_EQ(r.u32(), 2u);
  wire[1] = 0;  // sender id low byte (little-endian u32 after channel byte)
  EXPECT_FALSE(open_envelope(keys_, 1, wire).has_value());
}

TEST_F(EnvelopeTest, ChannelIsBound) {
  // Re-tagging a client-request envelope as a BFT message must fail.
  Bytes wire = seal_envelope(keys_, Channel::kClientRequest, 100, 0, to_bytes("x"));
  wire[0] = static_cast<uint8_t>(Channel::kBft);
  EXPECT_FALSE(open_envelope(keys_, 0, wire).has_value());
}

TEST_F(EnvelopeTest, UnknownSenderRejects) {
  // A receiver must not crash or accept mail claiming to come from a node
  // outside the key ring.
  Bytes wire = seal_envelope(keys_, Channel::kBft, 0, 1, to_bytes("x"));
  wire[1] = 55;  // no such node
  EXPECT_FALSE(open_envelope(keys_, 1, wire).has_value());
}

TEST_F(EnvelopeTest, GarbageAndTruncationRejected) {
  EXPECT_FALSE(open_envelope(keys_, 1, Bytes{}).has_value());
  EXPECT_FALSE(open_envelope(keys_, 1, Bytes{0xff, 0x00}).has_value());
  const Bytes wire = seal_envelope(keys_, Channel::kBft, 0, 1, to_bytes("x"));
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        open_envelope(keys_, 1, BytesView(wire.data(), len)).has_value());
  }
}

TEST(KeyRing, PairwiseKeysAreSymmetricAndDistinct) {
  KeyRing kr(to_bytes("seed"), {0, 1, 2});
  EXPECT_EQ(kr.session_key(0, 1), kr.session_key(1, 0));
  EXPECT_NE(kr.session_key(0, 1), kr.session_key(0, 2));
  EXPECT_NE(kr.session_key(0, 1), kr.channel_key(0, 1));
  EXPECT_EQ(kr.channel_key(0, 1).size(), 64u);
  EXPECT_THROW(kr.session_key(0, 9), std::out_of_range);
}

TEST(KeyRing, SeedSeparatesDeployments) {
  KeyRing a(to_bytes("seed-a"), {0, 1});
  KeyRing b(to_bytes("seed-b"), {0, 1});
  EXPECT_NE(a.session_key(0, 1), b.session_key(0, 1));
}

TEST(KeyRing, SignVerify) {
  KeyRing kr(to_bytes("seed"), {0, 1});
  const Bytes msg = to_bytes("view-change body");
  const Bytes sig = kr.sign(0, msg);
  EXPECT_TRUE(kr.verify(0, msg, sig));
  EXPECT_FALSE(kr.verify(1, msg, sig));           // wrong signer
  EXPECT_FALSE(kr.verify(0, to_bytes("other"), sig));
  Bytes bad = sig;
  bad[0] ^= 1;
  EXPECT_FALSE(kr.verify(0, msg, bad));
  EXPECT_FALSE(kr.verify(42, msg, sig));          // unknown node
  EXPECT_THROW(kr.sign(42, msg), std::out_of_range);
}

}  // namespace
}  // namespace scab::bft
