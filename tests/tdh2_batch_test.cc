// Randomized batch verification (DESIGN.md §4.3): the merged-equation fast
// path, the bisection fallback's exact attribution of Byzantine shares, and
// the soundness properties that justify both — a batch of one is bit-for-bit
// the single-share path, the same DRBG seed reproduces the same verdict, and
// a forgery crafted to cancel under FIXED combination coefficients is caught
// by the randomized ones.
#include "threshenc/tdh2.h"

#include <gtest/gtest.h>

namespace scab::threshenc {
namespace {

using crypto::Bignum;
using crypto::Drbg;
using crypto::ModGroup;

const ModGroup& test_group() {
  static const ModGroup grp = [] {
    Drbg rng(to_bytes("tdh2-batch-test-group"));
    return ModGroup::generate(64, rng);
  }();
  return grp;
}

class Tdh2BatchTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kServers = 32;
  static constexpr uint32_t kThreshold = 11;

  Tdh2BatchTest() : rng_(to_bytes("tdh2-batch-test")) {
    keys_ = tdh2_keygen(test_group(), kThreshold, kServers, rng_);
    ct_ = tdh2_encrypt(keys_.pk, rng_.generate(kTdh2MessageSize), label_, rng_);
  }

  std::vector<Tdh2DecryptionShare> all_shares() {
    std::vector<Tdh2DecryptionShare> out;
    for (uint32_t i = 0; i < kServers; ++i) {
      out.push_back(
          *tdh2_share_decrypt(keys_.pk, keys_.shares[i], ct_, label_, rng_));
    }
    return out;
  }

  Drbg rng_;
  Tdh2KeyMaterial keys_;
  Bytes label_ = to_bytes("batch-label");
  Tdh2Ciphertext ct_;
};

TEST_F(Tdh2BatchTest, AllValidBatchPassesWithoutBisection) {
  const auto shares = all_shares();
  Drbg vrng(to_bytes("verifier"));
  const auto verdict =
      tdh2_batch_verify_shares(keys_.pk, ct_, label_, shares, vrng);
  ASSERT_EQ(verdict.valid.size(), shares.size());
  EXPECT_TRUE(verdict.all_valid());
  EXPECT_EQ(verdict.bisection_splits, 0u);
}

TEST_F(Tdh2BatchTest, OneBadShareAmongThirtyTwoIsFoundAndAttributed) {
  auto shares = all_shares();
  const std::size_t bad = 19;
  shares[bad].f_i = (shares[bad].f_i + Bignum(1)) % test_group().q();

  Drbg vrng(to_bytes("verifier"));
  const auto verdict =
      tdh2_batch_verify_shares(keys_.pk, ct_, label_, shares, vrng);
  ASSERT_EQ(verdict.valid.size(), shares.size());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    EXPECT_EQ(verdict.valid[i] != 0, i != bad) << "share " << i;
  }
  // Exactly one bad leaf in a batch of 32: the bisection path to it splits
  // at every level of the tree.
  EXPECT_GT(verdict.bisection_splits, 0u);
  // The verdict must agree with per-share verification.
  for (std::size_t i = 0; i < shares.size(); ++i) {
    EXPECT_EQ(verdict.valid[i] != 0,
              tdh2_verify_share(keys_.pk, ct_, label_, shares[i]));
  }
}

TEST_F(Tdh2BatchTest, BatchOfOneIsExactlyTheSinglePath) {
  const auto shares = all_shares();
  const std::span<const Tdh2DecryptionShare> one(&shares[3], 1);

  // Same verdict as the single-share verifier...
  Drbg vrng(to_bytes("verifier"));
  const auto verdict = tdh2_batch_verify_shares(keys_.pk, ct_, label_, one, vrng);
  ASSERT_EQ(verdict.valid.size(), 1u);
  EXPECT_TRUE(verdict.valid[0]);
  EXPECT_EQ(verdict.bisection_splits, 0u);
  EXPECT_TRUE(tdh2_verify_share(keys_.pk, ct_, label_, shares[3]));

  // ...and the DRBG is not consumed: no random coefficients are drawn for a
  // batch of one, so the verifier stream is bit-for-bit untouched.
  Drbg untouched(to_bytes("verifier"));
  EXPECT_EQ(vrng.generate(32), untouched.generate(32));
}

TEST_F(Tdh2BatchTest, FixedCoefficientForgeryIsRejected) {
  // Two shares tampered in opposite directions: f'_i = f_i + d and
  // f'_j = f_j - d.  Under EQUAL combination coefficients the perturbations
  // cancel in the merged exponent sums, so a fixed-coefficient batch
  // verifier would accept both forgeries.  Random per-share coefficients
  // cancel only with probability ~2^-128, so the batch must reject and
  // attribute BOTH shares.
  auto shares = all_shares();
  const std::size_t i = 5, j = 24;
  const Bignum d(123456789);
  const Bignum& q = test_group().q();
  shares[i].f_i = (shares[i].f_i + d) % q;
  shares[j].f_i = (shares[j].f_i + (q - d)) % q;

  Drbg vrng(to_bytes("verifier"));
  const auto verdict =
      tdh2_batch_verify_shares(keys_.pk, ct_, label_, shares, vrng);
  ASSERT_EQ(verdict.valid.size(), shares.size());
  for (std::size_t s = 0; s < shares.size(); ++s) {
    EXPECT_EQ(verdict.valid[s] != 0, s != i && s != j) << "share " << s;
  }
  EXPECT_GT(verdict.bisection_splits, 0u);
}

TEST_F(Tdh2BatchTest, SameDrbgSeedGivesIdenticalVerdicts) {
  auto shares = all_shares();
  shares[7].u_i = test_group().mul(shares[7].u_i, shares[7].u_i);
  shares[28].f_i = (shares[28].f_i + Bignum(9)) % test_group().q();

  Drbg a(to_bytes("seed-x")), b(to_bytes("seed-x"));
  const auto va = tdh2_batch_verify_shares(keys_.pk, ct_, label_, shares, a);
  const auto vb = tdh2_batch_verify_shares(keys_.pk, ct_, label_, shares, b);
  EXPECT_EQ(va.valid, vb.valid);
  EXPECT_EQ(va.bisection_splits, vb.bisection_splits);
}

TEST_F(Tdh2BatchTest, StructurallyInvalidShareDoesNotPoisonTheBatch) {
  // A share that fails the structural prechecks (index out of range) is
  // rejected before the algebra, and the remaining shares still pass on the
  // merged equation without bisection.
  auto shares = all_shares();
  shares[0].index = kServers + 7;

  Drbg vrng(to_bytes("verifier"));
  const auto verdict =
      tdh2_batch_verify_shares(keys_.pk, ct_, label_, shares, vrng);
  EXPECT_FALSE(verdict.valid[0]);
  for (std::size_t s = 1; s < shares.size(); ++s) {
    EXPECT_TRUE(verdict.valid[s]) << "share " << s;
  }
  EXPECT_EQ(verdict.bisection_splits, 0u);
}

TEST_F(Tdh2BatchTest, BatchCiphertextVerificationMatchesSinglePath) {
  std::vector<Tdh2Ciphertext> cts;
  std::vector<Bytes> labels;
  for (int k = 0; k < 8; ++k) {
    labels.push_back(to_bytes("ct-" + std::to_string(k)));
    cts.push_back(tdh2_encrypt(keys_.pk, rng_.generate(kTdh2MessageSize),
                               labels.back(), rng_));
  }

  Drbg vrng(to_bytes("verifier"));
  const auto ok = tdh2_batch_verify_ciphertexts(keys_.pk, cts, labels, vrng);
  EXPECT_TRUE(ok.all_valid());
  EXPECT_EQ(ok.bisection_splits, 0u);

  // Tamper one proof response and one pad; both must be attributed exactly.
  cts[2].f = (cts[2].f + Bignum(1)) % test_group().q();
  cts[6].c[0] ^= 1;
  const auto bad = tdh2_batch_verify_ciphertexts(keys_.pk, cts, labels, vrng);
  for (std::size_t k = 0; k < cts.size(); ++k) {
    EXPECT_EQ(bad.valid[k] != 0, k != 2 && k != 6) << "ct " << k;
    EXPECT_EQ(bad.valid[k] != 0,
              tdh2_verify_ciphertext(keys_.pk, cts[k], labels[k]));
  }
  EXPECT_GT(bad.bisection_splits, 0u);
}

TEST_F(Tdh2BatchTest, SharesForADifferentCiphertextAreRejected) {
  // A share's challenge hash binds the ciphertext's u, so shares decrypted
  // for one ciphertext are useless against another — batch verification
  // must agree with the single path and reject all of them.  (The label is
  // deliberately NOT part of the share proof; label binding is the
  // ciphertext proof's job.)
  const auto shares = all_shares();
  const auto other =
      tdh2_encrypt(keys_.pk, rng_.generate(kTdh2MessageSize), label_, rng_);
  Drbg vrng(to_bytes("verifier"));
  const auto verdict =
      tdh2_batch_verify_shares(keys_.pk, other, label_, shares, vrng);
  for (std::size_t s = 0; s < shares.size(); ++s) {
    EXPECT_FALSE(verdict.valid[s]) << "share " << s;
    EXPECT_FALSE(tdh2_verify_share(keys_.pk, other, label_, shares[s]));
  }
}

}  // namespace
}  // namespace scab::threshenc
