// Observability layer: metrics/tracer unit tests, then harness-level
// integration tests that drive faults through a cluster and assert the
// expected counters move — and that nothing else does.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/kvstore.h"
#include "bft/client.h"
#include "bft/replica.h"
#include "causal/harness.h"
#include "causal/id.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace scab {
namespace {

using causal::Cluster;
using causal::ClusterOptions;
using causal::Protocol;
using sim::kMillisecond;
using sim::kSecond;

// ---------------------------------------------------------------------------
// Unit: registry

TEST(Metrics, CounterGaugeHistogramBasics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("a.count");
  c.inc();
  c.inc(4);
  EXPECT_EQ(reg.counter_value("a.count"), 5u);
  EXPECT_EQ(reg.counter_value("missing"), 0u);

  obs::Gauge& g = reg.gauge("a.level");
  g.set(7);
  g.set(3);
  EXPECT_EQ(reg.gauge_value("a.level"), 3);
  EXPECT_EQ(reg.gauge_max("a.level"), 7);

  obs::Histogram& h = reg.histogram("a.lat_ns");
  h.record(100);
  h.record(1000);
  h.record(10000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 11100u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 10000u);
  EXPECT_GE(h.quantile(0.5), 1000u);  // bucket upper bound >= the value
  // Handles are stable: the same name returns the same instrument.
  EXPECT_EQ(&reg.counter("a.count"), &c);
}

TEST(Metrics, MergeSumsCountersAndTakesGaugeMax) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("x").inc(2);
  b.counter("x").inc(3);
  b.counter("only_b").inc(1);
  a.gauge("g").set(10);
  a.gauge("g").set(1);  // max 10, value 1
  b.gauge("g").set(4);  // max 4, value 4
  a.histogram("h").record(8);
  b.histogram("h").record(16);

  a.merge_from(b);
  EXPECT_EQ(a.counter_value("x"), 5u);
  EXPECT_EQ(a.counter_value("only_b"), 1u);
  EXPECT_EQ(a.gauge_value("g"), 5);   // values add (cluster-wide level)
  EXPECT_EQ(a.gauge_max("g"), 10);    // high-water marks take the max
  EXPECT_EQ(a.find_histogram("h")->count(), 2u);
  EXPECT_EQ(a.find_histogram("h")->sum(), 24u);
}

TEST(Metrics, ChangedCountersDiff) {
  obs::MetricsRegistry reg;
  reg.counter("stay").inc(5);
  auto before = reg.counter_values();
  reg.counter("stay").inc(0);   // untouched value
  reg.counter("move").inc(2);   // new and nonzero
  reg.counter("zero");          // new but zero: not a change
  auto changed = obs::changed_counters(before, reg.counter_values());
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed.at("move"), 2u);
}

TEST(Metrics, ToJsonIsParseable) {
  obs::MetricsRegistry reg;
  reg.counter("n.c").inc(42);
  reg.gauge("n.g").set(-3);
  reg.histogram("n.h").record(1000);
  const auto doc = obs::json::parse(reg.to_json());
  ASSERT_TRUE(doc.has_value());
  const auto* c = obs::json::find_path(*doc, "counters/n.c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->as_number(), 42.0);
  EXPECT_EQ(obs::json::find_path(*doc, "gauges/n.g/value")->as_number(), -3.0);
  EXPECT_EQ(obs::json::find_path(*doc, "histograms/n.h/count")->as_number(),
            1.0);
}

// ---------------------------------------------------------------------------
// Unit: tracer

TEST(Tracer, BreakdownTelescopesExactly) {
  obs::Tracer t;
  // Request 1: all phases present.
  t.record(1, 1, obs::Phase::kSubmit, 100);
  t.record(1, 1, obs::Phase::kAdmit, 200);
  t.record(1, 1, obs::Phase::kPrePrepare, 250);
  t.record(1, 1, obs::Phase::kPrepared, 400);
  t.record(1, 1, obs::Phase::kCommitted, 500);
  t.record(1, 1, obs::Phase::kExecuted, 600);
  t.record(1, 1, obs::Phase::kRevealed, 900);
  t.record(1, 1, obs::Phase::kCompleted, 1000);
  // Request 2: reveal phase missing (plain PBFT) — backfilled, zero-length.
  t.record(1, 2, obs::Phase::kSubmit, 1000);
  t.record(1, 2, obs::Phase::kAdmit, 1500);
  t.record(1, 2, obs::Phase::kPrePrepare, 1600);
  t.record(1, 2, obs::Phase::kPrepared, 1700);
  t.record(1, 2, obs::Phase::kCommitted, 1800);
  t.record(1, 2, obs::Phase::kExecuted, 1900);
  t.record(1, 2, obs::Phase::kCompleted, 3000);
  // Incomplete span: never completed, excluded from the breakdown.
  t.record(2, 1, obs::Phase::kSubmit, 5000);

  const auto b = t.breakdown();
  EXPECT_EQ(b.completed, 2u);
  EXPECT_EQ(b.tracked, 3u);
  // Mean of (1000-100) and (3000-1000) = 1450 ns.
  EXPECT_NEAR(b.end_to_end_ms, 1450.0 / 1e6, 1e-12);
  double sum = 0;
  for (const auto& p : b.phases) sum += p.mean_ms;
  EXPECT_NEAR(sum, b.end_to_end_ms, 1e-12);  // exact telescoping
  // The reveal segment exists but only one request recorded it itself.
  bool found_reveal = false;
  for (const auto& p : b.phases) {
    if (std::string(p.name) == "reveal") {
      found_reveal = true;
      EXPECT_EQ(p.observed, 1u);
    }
  }
  EXPECT_TRUE(found_reveal);

  // Earlier records win: a later, larger timestamp does not move the phase.
  t.record(1, 1, obs::Phase::kAdmit, 99999);
  EXPECT_EQ(t.first_at(1, 1, obs::Phase::kAdmit), 200u);
}

TEST(Tracer, CapacityBoundsTrackedSpans) {
  obs::Tracer t(4);
  for (uint64_t s = 1; s <= 10; ++s) {
    t.record(1, s, obs::Phase::kSubmit, s * 10);
  }
  EXPECT_EQ(t.tracked(), 4u);
  // Existing spans still update past the cap.
  t.record(1, 1, obs::Phase::kCompleted, 1000);
  EXPECT_EQ(t.breakdown().completed, 1u);
  // Inert tracer records nothing.
  obs::Tracer& sink = obs::Tracer::inert();
  sink.record(9, 9, obs::Phase::kSubmit, 1);
  EXPECT_EQ(sink.tracked(), 0u);
}

// ---------------------------------------------------------------------------
// Integration: harness + fault injection

ClusterOptions obs_options(Protocol p = Protocol::kPbft) {
  ClusterOptions o;
  o.protocol = p;
  o.bft = bft::BftConfig::for_f(1);
  o.bft.request_timeout = 1 * kSecond;
  o.bft.watchdog_period = 200 * kMillisecond;
  o.profile = sim::NetworkProfile::ideal();
  o.seed = 31;
  o.service_factory = [] { return std::make_unique<apps::KvStore>(); };
  return o;
}

TEST(ObsIntegration, NetworkDropAttribution) {
  Cluster cluster(obs_options());
  auto& net_m = cluster.net_metrics();

  // Baseline: a clean request drops nothing.
  ASSERT_TRUE(cluster.run_one(0, apps::KvStore::put("a", to_bytes("1"))));
  EXPECT_EQ(net_m.counter_value("net.drops.crash"), 0u);
  EXPECT_EQ(net_m.counter_value("net.drops.cut"), 0u);
  EXPECT_EQ(net_m.counter_value("net.drops.tamper"), 0u);
  EXPECT_GT(net_m.counter_value("net.messages_delivered"), 0u);

  // Crash replica 3: its traffic is dropped, attributed to kCrash only.
  cluster.net().faults().crash(3);
  ASSERT_TRUE(cluster.run_one(0, apps::KvStore::put("b", to_bytes("2"))));
  EXPECT_GT(net_m.counter_value("net.drops.crash"), 0u);
  EXPECT_EQ(net_m.counter_value("net.drops.cut"), 0u);
  EXPECT_EQ(net_m.counter_value("net.drops.tamper"), 0u);
  cluster.net().faults().recover(3);

  // Cut one direction of one link: attributed to kCut only.
  const uint64_t crash_before = net_m.counter_value("net.drops.crash");
  cluster.net().faults().cut(1, 2);
  ASSERT_TRUE(cluster.run_one(0, apps::KvStore::put("c", to_bytes("3"))));
  EXPECT_GT(net_m.counter_value("net.drops.cut"), 0u);
  EXPECT_EQ(net_m.counter_value("net.drops.crash"), crash_before);
  EXPECT_EQ(net_m.counter_value("net.drops.tamper"), 0u);
  cluster.net().faults().heal(1, 2);

  // Tamper hook dropping 2 -> 3 traffic: attributed to kTamper only.
  const uint64_t cut_before = net_m.counter_value("net.drops.cut");
  cluster.net().faults().set_tamper(
      [](sim::NodeId from, sim::NodeId to,
         BytesView msg) -> std::optional<Bytes> {
        if (from == 2 && to == 3) return std::nullopt;
        return Bytes(msg.begin(), msg.end());
      });
  ASSERT_TRUE(cluster.run_one(0, apps::KvStore::put("d", to_bytes("4"))));
  EXPECT_GT(net_m.counter_value("net.drops.tamper"), 0u);
  EXPECT_EQ(net_m.counter_value("net.drops.cut"), cut_before);
  EXPECT_EQ(net_m.counter_value("net.drops.crash"), crash_before);
}

TEST(ObsIntegration, PhaseBreakdownMatchesClientLatency) {
  auto opts = obs_options();
  opts.profile = sim::NetworkProfile::lan();
  Cluster cluster(opts);

  const uint64_t kOps = 20;
  auto& client = cluster.client(0);
  client.run_closed_loop(
      [](uint64_t i) {
        return apps::KvStore::put("k" + std::to_string(i), to_bytes("v"));
      },
      kOps);
  ASSERT_TRUE(cluster.sim().run_while([&] {
    return client.completed_ops() >= kOps ||
           cluster.sim().now() > 60 * kSecond;
  }));
  ASSERT_EQ(client.completed_ops(), kOps);

  const auto b = cluster.tracer().breakdown();
  EXPECT_EQ(b.completed, kOps);
  ASSERT_GT(b.end_to_end_ms, 0.0);
  double sum = 0;
  for (const auto& p : b.phases) sum += p.mean_ms;
  // The figure benches promise "within 5%"; the construction is exact.
  EXPECT_NEAR(sum, b.end_to_end_ms, 1e-9 * b.end_to_end_ms);

  // The tracer's end-to-end mean is the client's measured mean latency.
  const auto* lat = cluster.client_metrics(0).find_histogram("client.latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), kOps);
  EXPECT_NEAR(lat->mean() / 1e6, b.end_to_end_ms, 0.01 * b.end_to_end_ms);

  // Replica-side counters saw all kOps requests.
  for (uint32_t i = 0; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.replica_metrics(i).counter_value("bft.requests_executed"),
              kOps)
        << "replica " << i;
  }
}

TEST(ObsIntegration, CorruptSharesMoveRejectionCounters) {
  auto opts = obs_options(Protocol::kCp0);
  Cluster cluster(opts);
  cluster.corrupt_replica_shares(3);

  // Share verification is lazy: a replica stops at the f+1 threshold, so
  // with honest shares in flight the corrupt one might never be checked.
  // Starve replica 0 of the honest reveal traffic (causal channel only) so
  // the corrupt share is the only peer share it ever verifies.
  cluster.net().faults().set_tamper(
      [&](sim::NodeId from, sim::NodeId to,
          BytesView msg) -> std::optional<Bytes> {
        if ((from == 1 || from == 2) && to == 0) {
          auto env = bft::open_envelope(cluster.keys(), to, msg);
          if (env && env->channel == bft::Channel::kCausal) return std::nullopt;
        }
        return Bytes(msg.begin(), msg.end());
      });

  ASSERT_TRUE(cluster.run_one(0, apps::KvStore::put("k", to_bytes("v")),
                              60 * kSecond));
  cluster.sim().run_until(cluster.sim().now() + 50 * kMillisecond);

  // Replica 0 saw only the corrupt peer share: verified, rejected, and
  // could not combine (own share + zero valid peers < f+1).
  auto& m0 = cluster.replica_metrics(0);
  EXPECT_GT(m0.counter_value("cp0.shares_rejected"), 0u);
  EXPECT_EQ(m0.counter_value("cp0.combines"), 0u);
  EXPECT_EQ(m0.counter_value("cp0.ct_rejected"), 0u);
  // The rejection came out of the batch-verification path: the flush that
  // met the corrupt share is counted as a fallback (batch not all-valid).
  EXPECT_GT(m0.counter_value("cp0.batch_fallbacks"), 0u);

  // Replicas 1 and 2 had the honest shares and combined normally — the
  // corrupt replica cannot block recovery.
  for (uint32_t i = 1; i < 3; ++i) {
    auto& m = cluster.replica_metrics(i);
    EXPECT_GT(m.counter_value("cp0.shares_verified"), 0u) << "replica " << i;
    EXPECT_GT(m.counter_value("cp0.combines"), 0u) << "replica " << i;
  }
}

TEST(ObsIntegration, BogusShareFloodMovesOnlyEarlyStash) {
  auto opts = obs_options(Protocol::kCp0);
  Cluster cluster(opts);

  // Bind and exercise every instrument with one honest request, then let
  // the cluster quiesce so in-flight reveals do not blur the snapshot.
  ASSERT_TRUE(cluster.run_one(0, apps::KvStore::put("a", to_bytes("1")),
                              60 * kSecond));
  cluster.sim().run_until(cluster.sim().now() + 100 * kMillisecond);

  const auto before = cluster.replica_metrics(1).counter_values();

  // Replica 3 floods shares for requests that were never delivered.
  const sim::NodeId attacker = 3;
  for (int i = 0; i < 50; ++i) {
    Writer w;
    causal::RequestId{Cluster::client_id(9), static_cast<uint64_t>(100 + i)}
        .write(w);
    w.bytes(to_bytes("bogus-share-" + std::to_string(i)));
    const Bytes body = std::move(w).take();
    cluster.net().send(attacker, 1,
                       bft::seal_envelope(cluster.keys(), bft::Channel::kCausal,
                                          attacker, 1, body));
  }
  cluster.sim().run_until(cluster.sim().now() + 50 * kMillisecond);

  // The flood touched exactly one counter on the victim: the early-share
  // stash.  No verifications, no rejections, no BFT activity.
  const auto changed =
      obs::changed_counters(before, cluster.replica_metrics(1).counter_values());
  ASSERT_EQ(changed.size(), 1u)
      << "unexpected counter movement: " << [&] {
           std::string s;
           for (const auto& [k, v] : changed) s += k + " ";
           return s;
         }();
  EXPECT_EQ(changed.begin()->first, "cp0.early_stashed");
  EXPECT_EQ(changed.begin()->second, 50u);
}

}  // namespace
}  // namespace scab
