#include "crypto/aes.h"

#include <gtest/gtest.h>

namespace scab::crypto {
namespace {

// FIPS-197 Appendix C.3: AES-256 known-answer test.
TEST(Aes256, Fips197KnownAnswer) {
  const Bytes key = hex_decode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  Aes256 cipher(key);
  uint8_t block[16];
  std::copy(pt.begin(), pt.end(), block);
  cipher.encrypt_block(block);
  EXPECT_EQ(hex_encode(BytesView(block, 16)),
            "8ea2b7ca516745bfeafc49904b496089");
}

// NIST SP 800-38A F.5.5: CTR-AES256 encryption (first two blocks; the
// counter carry stays within the low 8 bytes here).
TEST(Aes256Ctr, Sp80038aVector) {
  const Bytes key = hex_decode(
      "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
  const Bytes ctr = hex_decode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = hex_decode(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  const Bytes ct = aes256_ctr(key, ctr, pt);
  EXPECT_EQ(hex_encode(ct),
            "601ec313775789a5b7a7f504bbf3d228"
            "f443e3ca4d62b59aca84e990cacaf5c5");
}

TEST(Aes256Ctr, IsItsOwnInverse) {
  const Bytes key(32, 0x77);
  const Bytes nonce(16, 0x01);
  const Bytes msg = to_bytes("arbitrary-length message, not block aligned!");
  const Bytes ct = aes256_ctr(key, nonce, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(aes256_ctr(key, nonce, ct), msg);
}

TEST(Aes256Ctr, EmptyMessage) {
  const Bytes key(32, 0x01);
  const Bytes nonce(16, 0x02);
  EXPECT_TRUE(aes256_ctr(key, nonce, Bytes{}).empty());
}

TEST(Aes256Ctr, CounterCarryAcrossBytes) {
  // Counter low byte 0xff: the second block must carry into byte 14.
  const Bytes key(32, 0x10);
  Bytes nonce(16, 0x00);
  nonce[15] = 0xff;
  const Bytes msg(48, 0xab);
  const Bytes ct = aes256_ctr(key, nonce, msg);
  EXPECT_EQ(aes256_ctr(key, nonce, ct), msg);
  // Blocks must not repeat keystream.
  EXPECT_NE(Bytes(ct.begin(), ct.begin() + 16), Bytes(ct.begin() + 16, ct.begin() + 32));
}

TEST(Aes256Ctr, DistinctNoncesDistinctStreams) {
  const Bytes key(32, 0x33);
  const Bytes msg(32, 0x00);
  Bytes n1(16, 0), n2(16, 0);
  n2[0] = 1;
  EXPECT_NE(aes256_ctr(key, n1, msg), aes256_ctr(key, n2, msg));
}

TEST(Aes256, RejectsBadKeySize) {
  EXPECT_THROW(Aes256(Bytes(16, 0)), std::invalid_argument);
  EXPECT_THROW(aes256_ctr(Bytes(31, 0), Bytes(16, 0), Bytes{1}), std::invalid_argument);
  EXPECT_THROW(aes256_ctr(Bytes(32, 0), Bytes(12, 0), Bytes{1}), std::invalid_argument);
}

}  // namespace
}  // namespace scab::crypto
