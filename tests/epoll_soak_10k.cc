// 10,000-connection epoll soak — the "thousands of connections, a handful
// of threads" claim at full scale.  Not a gtest: this needs ~20k fds in
// one process (both ends of every connection live here), so it attempts to
// raise RLIMIT_NOFILE and exits 77 (the CI "skipped" convention) when the
// environment cannot provide the budget — fd limits and sandboxed sockets
// are facts about the box, not regressions.
//
// Flow: one SocketTransport with ONE io thread; 10k raw TCP clients connect
// and each sends one 32-byte frame while every connection stays open; the
// run passes when every frame is delivered intact and stop() unwinds the
// ~10k registered connections promptly.  Optimized builds only (gated in
// tests/CMakeLists.txt): under sanitizers the fd bookkeeping dominates and
// the in-process EpollSoak gtests already cover the logic at ~1k scale.
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "rt/transport.h"

namespace {

constexpr std::size_t kDefaultConns = 10000;
constexpr std::size_t kPayload = 32;

int connect_loopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scab;
  // Optional argv[1]: connection count (default 10000) — lets fd-capped
  // boxes exercise the full code path at whatever scale they can afford.
  const std::size_t kConns =
      argc > 1 ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10))
               : kDefaultConns;
  if (kConns == 0) return 2;

  // 2 fds per connection + headroom for the transport, stdio, epoll/event
  // fds.  rlim_max caps what an unprivileged process may request.
  const rlim_t want = 2 * kConns + 512;
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) {
    std::fprintf(stderr, "SKIP: getrlimit failed\n");
    return 77;
  }
  if (rl.rlim_cur < want) {
    rlimit raised = rl;
    raised.rlim_cur = want < rl.rlim_max ? want : rl.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) rl = raised;
  }
  if (rl.rlim_cur < want) {
    // Last resort: raising the HARD limit needs CAP_SYS_RESOURCE (root in
    // a container), which CI soak boxes typically have.
    rlimit raised{want, want};
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) rl = raised;
  }
  if (rl.rlim_cur < want) {
    std::fprintf(stderr,
                 "SKIP: RLIMIT_NOFILE %llu < %llu needed for %zu connections\n",
                 static_cast<unsigned long long>(rl.rlim_cur),
                 static_cast<unsigned long long>(want), kConns);
    return 77;
  }

  rt::SocketTransport server(0, {}, 0, "127.0.0.1", /*io_threads=*/1);
  if (!server.ok()) {
    std::fprintf(stderr, "SKIP: cannot bind loopback sockets\n");
    return 77;
  }
  std::atomic<uint64_t> delivered{0};
  std::atomic<uint64_t> sum{0};
  server.set_deliver([&](host::NodeId from, host::NodeId to, Bytes msg) {
    if (to == 1 && msg.size() == kPayload) {
      sum.fetch_add(from, std::memory_order_relaxed);
      delivered.fetch_add(1, std::memory_order_relaxed);
    }
  });
  server.start();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<int> fds;
  fds.reserve(kConns);
  uint64_t expect_sum = 0;
  for (std::size_t i = 0; i < kConns; ++i) {
    const int fd = connect_loopback(server.port());
    if (fd < 0) {
      // Mid-run fd exhaustion (another process ate the budget): skip, the
      // environment reneged — but a refused connection with budget left is
      // an accept-loop failure and must FAIL.
      std::fprintf(stderr,
                   "%s: connect %zu/%zu failed (errno %d)\n",
                   errno == EMFILE || errno == ENFILE ? "SKIP" : "FAIL", i,
                   kConns, errno);
      for (int f : fds) ::close(f);
      server.stop();
      return errno == EMFILE || errno == ENFILE ? 77 : 1;
    }
    fds.push_back(fd);
    const uint32_t len = kPayload, from = static_cast<uint32_t>(i + 1), to = 1;
    uint8_t frame[12 + kPayload];
    std::memcpy(frame, &len, 4);
    std::memcpy(frame + 4, &from, 4);
    std::memcpy(frame + 8, &to, 4);
    std::memset(frame + 12, 0xab, kPayload);
    if (::send(fd, frame, sizeof(frame), 0) !=
        static_cast<ssize_t>(sizeof(frame))) {
      std::fprintf(stderr, "FAIL: short send on connection %zu\n", i);
      for (int f : fds) ::close(f);
      server.stop();
      return 1;
    }
    expect_sum += from;
  }

  const auto deadline = t0 + std::chrono::seconds(120);
  while (delivered.load(std::memory_order_relaxed) < kConns &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const uint64_t got = delivered.load();

  const auto stop_t0 = std::chrono::steady_clock::now();
  for (int fd : fds) ::close(fd);
  server.stop();
  const double stop_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - stop_t0)
                             .count();

  std::printf(
      "{\"figure\":\"epoll_soak\",\"connections\":%zu,\"delivered\":%llu,"
      "\"io_threads\":1,\"elapsed_s\":%.2f,\"stop_ms\":%.1f,"
      "\"accept_errors\":%llu}\n",
      kConns, static_cast<unsigned long long>(got), elapsed_s, stop_ms,
      static_cast<unsigned long long>(server.accept_errors()));

  if (got != kConns) {
    std::fprintf(stderr, "FAIL: delivered %llu/%zu frames\n",
                 static_cast<unsigned long long>(got), kConns);
    return 1;
  }
  if (sum.load() != expect_sum) {
    std::fprintf(stderr, "FAIL: from-id checksum mismatch\n");
    return 1;
  }
  if (stop_ms > 10000.0) {
    std::fprintf(stderr, "FAIL: stop() took %.1f ms to unwind\n", stop_ms);
    return 1;
  }
  return 0;
}
