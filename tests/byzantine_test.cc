// Active-adversary tests: an equivocating primary, forged protocol
// messages, and lossy networks.  The test crafts Byzantine traffic with the
// cluster's own key ring (the simulated adversary controls its corrupted
// node's keys, exactly as in the threat model).
#include <gtest/gtest.h>

#include "apps/kvstore.h"
#include "bft/client.h"
#include "bft/replica.h"
#include "causal/cp0.h"
#include "causal/cp1.h"
#include "causal/harness.h"

namespace scab::causal {
namespace {

using bft::NodeId;
using sim::kMillisecond;
using sim::kSecond;

ClusterOptions byz_options() {
  ClusterOptions o;
  o.protocol = Protocol::kPbft;
  o.bft = bft::BftConfig::for_f(1);
  o.bft.request_timeout = 1 * kSecond;
  o.bft.watchdog_period = 200 * kMillisecond;
  o.profile = sim::NetworkProfile::ideal();
  o.seed = 23;
  o.service_factory = [] { return std::make_unique<apps::KvStore>(); };
  return o;
}

// The primary equivocates: replica 2 receives a DIFFERENT batch than
// replicas 1 and 3 for the same (view, seq).  Safety must hold (no two
// correct replicas execute different operations at the same position) and
// liveness must recover.
TEST(Byzantine, EquivocatingPrimaryCannotSplitState) {
  auto opts = byz_options();
  opts.bft.checkpoint_interval = 8;  // quick catch-up for the lagging replica
  Cluster cluster(opts);

  cluster.net().faults().set_tamper(
      [&](NodeId from, NodeId to, BytesView msg) -> std::optional<Bytes> {
        if (from != 0 || to != 2) return Bytes(msg.begin(), msg.end());
        // Only rewrite PRE-PREPAREs from the primary to replica 2.
        auto env = bft::open_envelope(cluster.keys(), to, msg);
        if (!env || env->channel != bft::Channel::kBft) {
          return Bytes(msg.begin(), msg.end());
        }
        auto tagged = bft::untag_bft(env->body);
        if (!tagged || tagged->first != bft::BftMsgType::kPrePrepare) {
          return Bytes(msg.begin(), msg.end());
        }
        auto pp = bft::PrePrepare::parse(tagged->second);
        if (!pp) return Bytes(msg.begin(), msg.end());
        // Substitute a conflicting operation (the equivocation).
        for (auto& req : pp->batch) {
          if (!req.is_null()) {
            req.payload = apps::KvStore::put("stolen", to_bytes("evil"));
          }
        }
        const Bytes body =
            bft::tag_bft(bft::BftMsgType::kPrePrepare, pp->serialize());
        return bft::seal_envelope(cluster.keys(), bft::Channel::kBft, from, to,
                                  body);
      });

  const auto result = cluster.run_one(
      0, apps::KvStore::put("honest", to_bytes("value")), 60 * kSecond);

  // The request eventually executes: the equivocated replica 2 cannot
  // prepare (its digest conflicts with the quorum's), but 0, 1 and 3 are a
  // 2f+1 quorum on the honest batch.
  ASSERT_TRUE(result.has_value());

  // Drive enough further traffic for a stable checkpoint; replica 2 then
  // detects it is behind and catches up via fetch — with the HONEST batch.
  cluster.net().faults().clear_tamper();
  auto& client = cluster.client(0);
  client.run_closed_loop(
      [](uint64_t i) {
        return apps::KvStore::put("fill" + std::to_string(i), to_bytes("x"));
      },
      12);
  cluster.sim().run_while([&] {
    return cluster.replica(2).executed_requests() >= 13 ||
           cluster.sim().now() > 120 * kSecond;
  });

  for (uint32_t i = 0; i < cluster.n(); ++i) {
    auto& kv = dynamic_cast<apps::KvStore&>(cluster.service(i));
    EXPECT_TRUE(kv.execute(0, apps::KvStore::get("stolen")).empty())
        << "replica " << i << " executed the equivocated op";
    EXPECT_EQ(kv.execute(0, apps::KvStore::get("honest")), to_bytes("value"))
        << "replica " << i;
  }
}

// A Byzantine backup floods forged votes claiming other replicas' ids; the
// envelope MACs make them undeliverable, and protocol-level identity checks
// reject votes whose claimed replica differs from the authenticated sender.
TEST(Byzantine, ForgedVotesAreIgnored) {
  auto opts = byz_options();
  Cluster cluster(opts);

  // Replica 3 (Byzantine) claims to be replica 1 inside its PREPAREs.
  bft::PhaseVote forged;
  forged.type = bft::BftMsgType::kPrepare;
  forged.view = 0;
  forged.seq = 1;
  forged.digest = Bytes(32, 0xee);
  forged.replica = 1;  // lie
  const Bytes body =
      bft::tag_bft(bft::BftMsgType::kPrepare, forged.serialize());
  for (NodeId to = 0; to < 3; ++to) {
    cluster.net().send(3, to,
                       bft::seal_envelope(cluster.keys(), bft::Channel::kBft,
                                          3, to, body));
  }
  // The cluster still works and no spurious view change happens.
  const auto r = cluster.run_one(0, apps::KvStore::put("k", to_bytes("v")));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(cluster.replica(1).view_changes_completed(), 0u);
}

// Random message loss between replicas: the protocol stays safe, and with
// client retransmission plus view changes it stays live.
TEST(Byzantine, SurvivesLossyReplicaLinks) {
  auto opts = byz_options();
  opts.profile = sim::NetworkProfile::lan();
  Cluster cluster(opts);

  uint64_t rng_state = 0x12345678;
  cluster.net().faults().set_tamper(
      [&](NodeId from, NodeId to, BytesView msg) -> std::optional<Bytes> {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        // Drop 5% of replica-to-replica traffic.
        if (from < 4 && to < 4 && rng_state % 100 < 5) return std::nullopt;
        return Bytes(msg.begin(), msg.end());
      });

  auto& client = cluster.client(0);
  client.set_retry_timeout(300 * kMillisecond);
  client.run_closed_loop(
      [](uint64_t i) {
        return apps::KvStore::put("k" + std::to_string(i), to_bytes("v"));
      },
      20);
  const bool done = cluster.sim().run_while([&] {
    return client.completed_ops() >= 20 || cluster.sim().now() > 300 * kSecond;
  });
  ASSERT_TRUE(done);
  EXPECT_EQ(client.completed_ops(), 20u);

  // Drain in-flight work, then compare state divergence-free across the
  // replicas that executed everything.
  cluster.net().faults().clear_tamper();
  cluster.sim().run_until(cluster.sim().now() + 100 * kMillisecond);
  std::size_t max_size = 0;
  for (uint32_t i = 0; i < cluster.n(); ++i) {
    auto& kv = dynamic_cast<apps::KvStore&>(cluster.service(i));
    max_size = std::max(max_size, kv.size());
  }
  EXPECT_EQ(max_size, 20u);
}

// CP1 under an equivocation-free but payload-garbling adversary: forged
// reveal openings never execute.
TEST(Byzantine, Cp1ForgedOpeningRejected) {
  auto opts = byz_options();
  opts.protocol = Protocol::kCp1;
  Cluster cluster(opts);

  // The honest client schedules a commitment.
  auto& proto = dynamic_cast<Cp1ClientProtocol&>(cluster.client_protocol(0));
  proto.set_crash_before_reveal(true);  // it never reveals
  cluster.client(0).submit(to_bytes("hidden operation"));
  cluster.sim().run_until(cluster.sim().now() + 10 * kMillisecond);

  // A Byzantine node (replica 3's key) submits a forged reveal for the
  // honest client's ID with a guessed message.
  Writer w;
  w.u8(1);  // Cp1Phase::kReveal
  RequestId{Cluster::client_id(0), 1}.write(w);
  w.bytes(to_bytes("guessed operation"));
  w.bytes(Bytes(32, 0x11));  // bogus opening
  bft::ClientRequestMsg evil;
  evil.client_seq = 77;
  evil.payload = std::move(w).take();
  const Bytes body = evil.serialize();
  // Unsealed spoofed bytes are dropped at the envelope layer.
  for (NodeId r = 0; r < cluster.n(); ++r) {
    cluster.net().send(Cluster::client_id(0), r, body);
  }
  // A properly sealed forgery from the corrupt replica 3's own identity:
  // the reveal's header names client 100, the sender is 3 -> rejected.
  for (NodeId r = 0; r < cluster.n(); ++r) {
    if (r == 3) continue;
    cluster.net().send(
        3, r,
        bft::seal_envelope(cluster.keys(), bft::Channel::kClientRequest, 3, r,
                           body));
  }
  cluster.sim().run_until(cluster.sim().now() + 50 * kMillisecond);

  for (uint32_t i = 0; i < cluster.n(); ++i) {
    // The commitment is still tentative: the forged opening was rejected
    // (a valid opening would have removed it and executed the request).
    auto& app = dynamic_cast<Cp1ReplicaApp&>(cluster.replica_app(i));
    EXPECT_EQ(app.tentative_count(), 1u) << "replica " << i;
    auto& kv = dynamic_cast<apps::KvStore&>(cluster.service(i));
    EXPECT_EQ(kv.size(), 0u) << "replica " << i;
  }
}

// CP0 under a share-flooding adversary: a Byzantine replica broadcasts
// decryption shares for RequestIds that never existed.  Regression for the
// unbounded-pending bug, where every such message created a PendingReveal
// entry keyed by the attacker-chosen id — state that was never reclaimed.
// Now pre-delivery shares live in a bounded per-sender stash.
TEST(Byzantine, Cp0BogusShareFloodCannotGrowState) {
  auto opts = byz_options();
  opts.protocol = Protocol::kCp0;
  Cluster cluster(opts);

  const NodeId attacker = 3;
  const int kFlood = 500;
  for (int i = 0; i < kFlood; ++i) {
    Writer w;
    RequestId{Cluster::client_id(7), static_cast<uint64_t>(1000 + i)}.write(w);
    w.bytes(to_bytes("not-a-share-" + std::to_string(i)));
    const Bytes body = std::move(w).take();
    for (NodeId r = 0; r < cluster.n(); ++r) {
      if (r == attacker) continue;
      cluster.net().send(attacker, r,
                         bft::seal_envelope(cluster.keys(), bft::Channel::kCausal,
                                            attacker, r, body));
    }
  }
  cluster.sim().run_until(cluster.sim().now() + 100 * kMillisecond);

  for (uint32_t i = 0; i < cluster.n(); ++i) {
    if (i == attacker) continue;
    auto& app = dynamic_cast<Cp0ReplicaApp&>(cluster.replica_app(i));
    // No reveal state was created for undelivered ids, and the stash is
    // capped per sender regardless of flood volume.
    EXPECT_EQ(app.pending_count(), 0u) << "replica " << i;
    EXPECT_LE(app.early_share_count(), Cp0ReplicaApp::kMaxEarlySharesPerSender)
        << "replica " << i;
  }

  // Liveness is unaffected: an honest request still round-trips.
  auto r = cluster.run_one(0, apps::KvStore::put("k", to_bytes("v")));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, to_bytes("ok"));
}

// Genuinely-early shares from correct peers still count once the request
// is delivered: the stash is adopted, not dropped.
TEST(Byzantine, Cp0EarlyShareStashStillServesCorrectPeers) {
  auto opts = byz_options();
  opts.protocol = Protocol::kCp0;
  Cluster cluster(opts);

  // Normal operation exercises the stash whenever one replica's delivery
  // races another's reveal broadcast; just confirm end-to-end liveness and
  // that no stash entries leak after the run.
  auto& client = cluster.client(0);
  client.run_closed_loop(
      [](uint64_t i) { return apps::KvStore::put("k" + std::to_string(i), to_bytes("v")); },
      6);
  const bool done =
      cluster.sim().run_while([&] { return client.completed_ops() >= 6; });
  ASSERT_TRUE(done);
  cluster.sim().run_until(cluster.sim().now() + 100 * kMillisecond);
  for (uint32_t i = 0; i < cluster.n(); ++i) {
    auto& app = dynamic_cast<Cp0ReplicaApp&>(cluster.replica_app(i));
    EXPECT_EQ(app.early_share_count(), 0u) << "replica " << i;
    EXPECT_EQ(app.pending_count(), 0u) << "replica " << i;
  }
}

// A Byzantine replica floods CHECKPOINT votes with distinct far-future
// sequence numbers.  Regression for the unbounded checkpoint_votes_ map:
// every vote used to create an entry keyed by the attacker-chosen seq.  Now
// seqs beyond low_watermark + 2 * watermark_window are rejected, and the
// bft.checkpoint_votes_tracked gauge's high-water mark proves the map never
// grew.
TEST(Byzantine, CheckpointFloodCannotGrowVoteMap) {
  auto opts = byz_options();
  Cluster cluster(opts);

  const NodeId attacker = 3;
  const int kFlood = 500;
  for (int i = 0; i < kFlood; ++i) {
    bft::Checkpoint cp;
    cp.seq = 1'000'000 + static_cast<uint64_t>(i) *
                             opts.bft.checkpoint_interval;  // all distinct
    cp.state_digest = Bytes(32, 0xab);
    cp.replica = attacker;
    const Bytes body =
        bft::tag_bft(bft::BftMsgType::kCheckpoint, cp.serialize());
    for (NodeId r = 0; r < cluster.n(); ++r) {
      if (r == attacker) continue;
      cluster.net().send(attacker, r,
                         bft::seal_envelope(cluster.keys(), bft::Channel::kBft,
                                            attacker, r, body));
    }
  }
  cluster.sim().run_until(cluster.sim().now() + 100 * kMillisecond);

  for (uint32_t i = 0; i < cluster.n(); ++i) {
    if (i == attacker) continue;
    // Every flooded seq is beyond the watermark bound, so not one vote was
    // stored (the gauge tracks the lifetime maximum of the map size).
    EXPECT_EQ(
        cluster.replica_metrics(i).gauge_max("bft.checkpoint_votes_tracked"),
        0)
        << "replica " << i;
  }

  // Liveness is unaffected.
  const auto r = cluster.run_one(0, apps::KvStore::put("k", to_bytes("v")));
  ASSERT_TRUE(r.has_value());
}

// A Byzantine replica floods properly signed VIEW-CHANGEs for hundreds of
// distinct future views.  Regression for two bugs at once: the
// view_change_votes_ map grew by one entry per flooded view, and the f+1
// join rule counted the same sender once per view — so a single Byzantine
// replica could both exhaust memory and force correct replicas into a
// spurious view change.  Now only the sender's highest view is kept.
TEST(Byzantine, ViewChangeFloodKeepsOneVotePerSender) {
  auto opts = byz_options();
  Cluster cluster(opts);

  const NodeId attacker = 3;
  for (uint64_t v = 2; v < 300; ++v) {
    bft::ViewChange vc;
    vc.new_view = v;
    vc.stable_seq = 0;
    vc.replica = attacker;
    vc.signature = cluster.keys().sign(attacker, vc.signed_body());
    const Bytes body =
        bft::tag_bft(bft::BftMsgType::kViewChange, vc.serialize());
    for (NodeId r = 0; r < cluster.n(); ++r) {
      if (r == attacker) continue;
      cluster.net().send(attacker, r,
                         bft::seal_envelope(cluster.keys(), bft::Channel::kBft,
                                            attacker, r, body));
    }
  }
  cluster.sim().run_until(cluster.sim().now() + 100 * kMillisecond);

  for (uint32_t i = 0; i < cluster.n(); ++i) {
    if (i == attacker) continue;
    // One vote per sender: the map never held more than n entries (here,
    // exactly the attacker's single refreshed vote).
    EXPECT_LE(
        cluster.replica_metrics(i).gauge_max("bft.view_change_votes_tracked"),
        static_cast<int64_t>(cluster.n()))
        << "replica " << i;
    // The lone Byzantine sender counts once toward the f+1 join rule, so no
    // correct replica joined a view change.
    EXPECT_EQ(
        cluster.replica_metrics(i).counter_value("bft.view_changes_started"),
        0u)
        << "replica " << i;
    EXPECT_EQ(cluster.replica(i).view_changes_completed(), 0u)
        << "replica " << i;
  }

  const auto r = cluster.run_one(0, apps::KvStore::put("k", to_bytes("v")));
  ASSERT_TRUE(r.has_value());
}

// A Byzantine primary orders the SAME request with client_seq == 0 at two
// sequence numbers.  Regression for the replay bypass: the dedup map was
// consulted with a zero-initialized default entry, so `client_seq <= last`
// never held for seq 0 and the request executed twice.  Presence in the map
// now means "has executed", which catches seq 0.
TEST(Byzantine, ClientSeqZeroReplayExecutesOnce) {
  auto opts = byz_options();
  opts.service_factory = [] { return std::make_unique<EchoService>(0); };
  Cluster cluster(opts);

  bft::Request req;
  req.client = Cluster::client_id(0);
  req.client_seq = 0;
  req.payload = to_bytes("op-zero");

  // The Byzantine primary (replica 0) proposes the identical request at
  // seq 1 and seq 2, to the three backups only; the backups are a 2f+1
  // quorum and commit both slots among themselves.
  for (uint64_t seq : {1ull, 2ull}) {
    bft::PrePrepare pp;
    pp.view = 0;
    pp.seq = seq;
    pp.batch = {req};
    const Bytes body =
        bft::tag_bft(bft::BftMsgType::kPrePrepare, pp.serialize());
    for (NodeId r = 1; r < cluster.n(); ++r) {
      cluster.net().send(0, r,
                         bft::seal_envelope(cluster.keys(), bft::Channel::kBft,
                                            0, r, body));
    }
  }
  cluster.sim().run_until(cluster.sim().now() + 200 * kMillisecond);

  for (uint32_t i = 1; i < cluster.n(); ++i) {
    // Both slots committed...
    EXPECT_GE(cluster.replica(i).executed_requests(), 1u) << "replica " << i;
    // ...but the request body ran exactly once; the replay was suppressed.
    EXPECT_EQ(dynamic_cast<EchoService&>(cluster.service(i)).executed(), 1u)
        << "replica " << i;
    EXPECT_EQ(
        cluster.replica_metrics(i).counter_value("bft.requests_executed"), 1u)
        << "replica " << i;
    EXPECT_EQ(
        cluster.replica_metrics(i).counter_value("bft.replays_suppressed"), 1u)
        << "replica " << i;
  }
}

}  // namespace
}  // namespace scab::causal
