#include "crypto/sha256.h"

#include <gtest/gtest.h>

namespace scab::crypto {
namespace {

std::string hash_hex(std::string_view msg) {
  return hex_encode(sha256(to_bytes(msg)));
}

// FIPS 180-4 / NIST CAVP known-answer vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto d = h.digest();
  EXPECT_EQ(hex_encode(BytesView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly and at odd "
      "block boundaries to stress the buffering path.";
  const Bytes whole = sha256(to_bytes(msg));
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(to_bytes(msg.substr(0, split)));
    h.update(to_bytes(msg.substr(split)));
    const auto d = h.digest();
    EXPECT_EQ(Bytes(d.begin(), d.end()), whole) << "split=" << split;
  }
}

TEST(Sha256, ExactBlockBoundaries) {
  // Messages of exactly 55, 56, 63, 64, 65 bytes hit every padding branch.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes msg(len, 0x42);
    Sha256 a;
    a.update(msg);
    const auto one = a.digest();
    Sha256 b;
    for (std::size_t i = 0; i < len; ++i) b.update(BytesView(&msg[i], 1));
    const auto two = b.digest();
    EXPECT_EQ(one, two) << "len=" << len;
  }
}

TEST(Sha256, ResetReusesHasher) {
  Sha256 h;
  h.update(to_bytes("garbage"));
  h.reset();
  h.update(to_bytes("abc"));
  const auto d = h.digest();
  EXPECT_EQ(hex_encode(BytesView(d.data(), d.size())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Tuple, SplitsAreDomainSeparated) {
  // ("ab","c") must differ from ("a","bc") and from ("abc").
  const Bytes h1 = sha256_tuple({to_bytes("ab"), to_bytes("c")});
  const Bytes h2 = sha256_tuple({to_bytes("a"), to_bytes("bc")});
  const Bytes h3 = sha256_tuple({to_bytes("abc")});
  EXPECT_NE(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_NE(h2, h3);
}

TEST(Sha256Tuple, Deterministic) {
  EXPECT_EQ(sha256_tuple({to_bytes("x"), to_bytes("y")}),
            sha256_tuple({to_bytes("x"), to_bytes("y")}));
}

}  // namespace
}  // namespace scab::crypto
