// The paper's security definitions, made executable where a test can make
// a meaningful statement:
//
//  * ARSS privacy game (Fig. 2, left): for Shamir-based sharings with
//    t = f+1, the adversary's view of f shares is PERFECTLY consistent
//    with every candidate secret — testable algebraically, not just
//    statistically: for any claimed secret s', there is a unique polynomial
//    through (0, s') and the f corrupted points, and the honest shares it
//    implies are valid shares of s'.
//  * ARSS recoverability game (Fig. 2, right): the adversary replaces its
//    f shares with anything; Rec still returns the dealt secret.
//  * NM-OAD (Fig. 1) strategy sweep: concrete mauling strategies against
//    the hash NM-CAD all fail (copying under a new header, coin reuse,
//    bit-flipping, truncation).
#include <gtest/gtest.h>

#include "crypto/commitment.h"
#include "secretshare/arss.h"

namespace scab::secretshare {
namespace {

using crypto::Drbg;

class PrivacyGameTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  uint32_t f() const { return GetParam(); }
  uint32_t n() const { return 3 * f() + 1; }
};

// The adversary statically corrupts servers 1..f (Fig. 2: T chosen before
// execution) and receives their shares of a hidden secret.  We show its
// view is consistent with EVERY candidate secret of the same length: the
// distinguisher advantage is exactly zero.
TEST_P(PrivacyGameTest, AdversaryViewConsistentWithEverySecret) {
  Drbg rng(to_bytes("privacy-game"));
  const Bytes hidden = rng.generate(21);  // 3 chunks
  const auto shares = arss2_share(hidden, f(), n(), rng);

  // Adversary's view: shares of servers 1..f.
  std::vector<ShamirShare> view(shares.begin(), shares.begin() + f());

  for (const std::string candidate :
       {"exactly21byteslong-ab", "jqzfw-21-bytes-pad-xy", "!!!!!!!!!!!!!!!!!!!!!"}) {
    const Bytes s_prime = to_bytes(candidate);
    ASSERT_EQ(s_prime.size(), hidden.size());
    const auto chunks = bytes_to_field(s_prime);

    // Synthesize the unique degree-f polynomial through (0, s'_chunk) and
    // the adversary's f points, then read off honest shares from it.
    std::vector<ShamirShare> synthesized(n());
    for (uint32_t i = 0; i < n(); ++i) {
      synthesized[i].index = i + 1;
      synthesized[i].secret_len = s_prime.size();
      synthesized[i].values.resize(chunks.size());
    }
    std::vector<Fe> xs, ys;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      xs.assign(1, Fe(0));
      ys.assign(1, chunks[c]);
      for (const auto& sh : view) {
        xs.push_back(Fe(sh.index));
        ys.push_back(sh.values[c]);
      }
      for (uint32_t i = 0; i < n(); ++i) {
        synthesized[i].values[c] = interpolate_at(xs, ys, Fe(i + 1));
      }
    }
    // The synthesized vector (a) reconstructs to s', and (b) agrees with
    // the adversary's view on T — so the view cannot distinguish s' from
    // the dealt secret.
    for (uint32_t i = 0; i < f(); ++i) {
      EXPECT_EQ(synthesized[i].values, view[i].values) << "corrupt server " << i;
    }
    std::vector<ShamirShare> quorum(synthesized.begin(),
                                    synthesized.begin() + f() + 1);
    EXPECT_EQ(shamir_reconstruct(quorum), s_prime);
  }
}

// Fig. 2, right: the adversary substitutes arbitrary values for its
// shares; reconstruction still yields the dealt secret (the paper's
// recoverability with adversary advantage required negligible).
TEST_P(PrivacyGameTest, RecoverabilityGameAdversaryLoses) {
  Drbg rng(to_bytes("rec-game"));
  crypto::Commitment cs(crypto::Commitment::cgen(rng));
  const Bytes secret = rng.generate(40);

  // ARSS1 instance of the game.
  {
    auto shares = arss1_share(secret, f() + 1, n(), cs, rng);
    for (uint32_t i = 0; i < f(); ++i) {
      // Adversary's replacement: arbitrary well-formed values.
      for (auto& v : shares[i].inner.values) v = Fe::random(rng);
    }
    Arss1Reconstructor rec(cs, f(), shares[0].commitment);
    std::optional<Bytes> out;
    for (const auto& s : shares) {
      out = rec.add(s);
      if (out) break;
    }
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, secret);
  }
  // ARSS2 instance (robust mode: sound against arbitrary coalitions).
  {
    auto shares = arss2_share(secret, f(), n(), rng);
    for (uint32_t i = 1; i <= f(); ++i) {
      for (auto& v : shares[i].values) v = Fe::random(rng);
    }
    Arss2Reconstructor rec(f(), shares[0], Arss2Mode::kRobust);
    std::optional<Bytes> out;
    for (uint32_t i = 1; i < n() && !out; ++i) out = rec.add(shares[i]);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, secret);
  }
}

INSTANTIATE_TEST_SUITE_P(FaultLevels, PrivacyGameTest,
                         ::testing::Values(1u, 2u, 3u),
                         [](const auto& info) {
                           return "f" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// NM-OAD strategy sweep (Fig. 1 adversaries, instantiated concretely).

TEST(NmOadGame, ConcreteMaulingStrategiesAllFail) {
  Drbg rng(to_bytes("nm-oad"));
  crypto::NmCadCommitment cs(crypto::NmCadCommitment::cgen(rng));

  const Bytes h = to_bytes("victim-client:7");
  const Bytes m = to_bytes("BUY 500 ACME LIMIT 101.00");
  const auto [c, d] = [&] {
    auto committed = cs.commit(h, m, rng);
    return std::make_pair(committed.commitment, committed.decommitment);
  }();

  const Bytes h_star = to_bytes("attacker-client:1");

  // Strategy 1: replay the commitment verbatim under the attacker's header
  // (the adversary "wins" the copy case only if it can OPEN it later).
  EXPECT_FALSE(cs.open(h_star, c, m, d));

  // Strategy 2: after the reveal, derive related messages and try to open
  // the original commitment (or simple transforms of it) to them.
  for (const std::string related :
       {"BUY 501 ACME LIMIT 101.00", "BUY 500 ACME LIMIT 101.01",
        "SELL 500 ACME LIMIT 101.00"}) {
    EXPECT_FALSE(cs.open(h_star, c, to_bytes(related), d));
    EXPECT_FALSE(cs.open(h, c, to_bytes(related), d));
    Bytes flipped = c;
    flipped[0] ^= 1;
    EXPECT_FALSE(cs.open(h_star, flipped, to_bytes(related), d));
  }

  // Strategy 3: coin transforms — truncated, extended, xored coins.
  Bytes d_trunc(d.begin(), d.end() - 1);
  EXPECT_FALSE(cs.open(h_star, c, m, d_trunc));
  Bytes d_ext = d;
  d_ext.push_back(0);
  EXPECT_FALSE(cs.open(h_star, c, m, d_ext));
  Bytes d_xor = d;
  for (auto& b : d_xor) b ^= 0xff;
  EXPECT_FALSE(cs.open(h_star, c, m, d_xor));

  // Sanity: the honest opening still verifies.
  EXPECT_TRUE(cs.open(h, c, m, d));
}

}  // namespace
}  // namespace scab::secretshare
