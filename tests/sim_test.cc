#include "sim/network.h"
#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace scab::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, TieBrokenByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5, [&] { order.push_back(1); });
  sim.schedule_at(5, [&] { order.push_back(2); });
  sim.schedule_at(5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) sim.schedule_after(10, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 40u);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  SimTime seen = 0;
  sim.schedule_at(100, [&] {
    sim.schedule_at(50, [&] { seen = sim.now(); });  // "in the past"
  });
  sim.run();
  EXPECT_EQ(seen, 100u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  for (SimTime t : {10u, 20u, 30u, 40u}) {
    sim.schedule_at(t, [&] { ++count; });
  }
  sim.run_until(25);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 25u);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(count, 4);
}

TEST(Simulator, RunWhilePredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(i * 10, [&] { ++count; });
  }
  EXPECT_TRUE(sim.run_while([&] { return count >= 4; }));
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(sim.run_while([&] { return count >= 100; }));
  EXPECT_EQ(count, 10);
}

// ---------------------------------------------------------------------------

class Recorder : public Node {
 public:
  using Node::Node;

  void on_message(NodeId from, BytesView msg) override {
    received.emplace_back(from, Bytes(msg.begin(), msg.end()), sim().now());
    if (cost_per_message > 0) charge(cost_per_message);
  }

  struct Rx {
    NodeId from;
    Bytes msg;
    SimTime at;
    Rx(NodeId f, Bytes m, SimTime t) : from(f), msg(std::move(m)), at(t) {}
  };
  std::vector<Rx> received;
  SimTime cost_per_message = 0;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(sim_, NetworkProfile::ideal()) {
    for (NodeId i = 0; i < 3; ++i) {
      nodes_.push_back(std::make_unique<Recorder>(sim_, i));
      net_.attach(nodes_.back().get());
    }
  }

  Simulator sim_;
  Network net_;
  std::vector<std::unique_ptr<Recorder>> nodes_;
};

TEST_F(NetworkTest, PointToPointDelivery) {
  net_.send(0, 1, to_bytes("hello"));
  sim_.run();
  ASSERT_EQ(nodes_[1]->received.size(), 1u);
  EXPECT_EQ(nodes_[1]->received[0].from, 0u);
  EXPECT_EQ(to_string(nodes_[1]->received[0].msg), "hello");
  EXPECT_TRUE(nodes_[0]->received.empty());
}

TEST_F(NetworkTest, BroadcastSkipsSender) {
  net_.broadcast(0, to_bytes("b"));
  sim_.run();
  EXPECT_TRUE(nodes_[0]->received.empty());
  EXPECT_EQ(nodes_[1]->received.size(), 1u);
  EXPECT_EQ(nodes_[2]->received.size(), 1u);
}

TEST_F(NetworkTest, BroadcastFilter) {
  net_.broadcast(0, to_bytes("b"), [](NodeId id) { return id == 2; });
  sim_.run();
  EXPECT_TRUE(nodes_[1]->received.empty());
  EXPECT_EQ(nodes_[2]->received.size(), 1u);
}

TEST_F(NetworkTest, UnknownDestinationIsDroppedSilently) {
  net_.send(0, 99, to_bytes("x"));
  sim_.run();
  EXPECT_EQ(net_.messages_delivered(), 0u);
}

TEST_F(NetworkTest, CrashedNodeNeitherSendsNorReceives) {
  net_.faults().crash(1);
  net_.send(0, 1, to_bytes("to-crashed"));
  net_.send(1, 2, to_bytes("from-crashed"));
  sim_.run();
  EXPECT_TRUE(nodes_[1]->received.empty());
  EXPECT_TRUE(nodes_[2]->received.empty());

  net_.faults().recover(1);
  net_.send(0, 1, to_bytes("back"));
  sim_.run();
  EXPECT_EQ(nodes_[1]->received.size(), 1u);
}

TEST_F(NetworkTest, CutLinkIsDirectional) {
  net_.faults().cut(0, 1);
  net_.send(0, 1, to_bytes("x"));
  net_.send(1, 0, to_bytes("y"));
  sim_.run();
  EXPECT_TRUE(nodes_[1]->received.empty());
  EXPECT_EQ(nodes_[0]->received.size(), 1u);
  net_.faults().heal(0, 1);
  net_.send(0, 1, to_bytes("x2"));
  sim_.run();
  EXPECT_EQ(nodes_[1]->received.size(), 1u);
}

TEST_F(NetworkTest, TamperHookModifiesAndDrops) {
  net_.faults().set_tamper([](NodeId, NodeId to, BytesView msg) -> std::optional<Bytes> {
    if (to == 1) return std::nullopt;  // drop to node 1
    Bytes m(msg.begin(), msg.end());
    m[0] ^= 0xff;  // corrupt to others
    return m;
  });
  net_.send(0, 1, to_bytes("x"));
  net_.send(0, 2, to_bytes("x"));
  sim_.run();
  EXPECT_TRUE(nodes_[1]->received.empty());
  ASSERT_EQ(nodes_[2]->received.size(), 1u);
  EXPECT_NE(nodes_[2]->received[0].msg[0], 'x');
}

TEST(NetworkTiming, LatencyIsApplied) {
  Simulator sim;
  NetworkProfile p;  // ideal + explicit latency
  p.link.latency = 5 * kMillisecond;
  Network net(sim, p);
  Recorder a(sim, 0), b(sim, 1);
  net.attach(&a);
  net.attach(&b);
  net.send(0, 1, to_bytes("m"));
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].at, 5 * kMillisecond);
}

TEST(NetworkTiming, BandwidthSerializesLargeMessages) {
  Simulator sim;
  NetworkProfile p;
  p.link.bandwidth_bps = 1'000'000;  // 1 MB/s: 1000 bytes take 1 ms
  Network net(sim, p);
  Recorder a(sim, 0), b(sim, 1);
  net.attach(&a);
  net.attach(&b);
  net.send(0, 1, Bytes(1000, 0));
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].at, kMillisecond);
}

TEST(NetworkTiming, BackToBackMessagesQueueOnTheLink) {
  Simulator sim;
  NetworkProfile p;
  p.link.bandwidth_bps = 1'000'000;
  Network net(sim, p);
  Recorder a(sim, 0), b(sim, 1);
  net.attach(&a);
  net.attach(&b);
  net.send(0, 1, Bytes(1000, 0));
  net.send(0, 1, Bytes(1000, 0));
  sim.run();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].at, kMillisecond);
  EXPECT_EQ(b.received[1].at, 2 * kMillisecond);  // queued behind the first
}

TEST(NetworkTiming, EgressPipeSharedAcrossDestinations) {
  // Single-NIC model: two messages to distinct receivers still serialize on
  // the sender's egress pipe.
  Simulator sim;
  NetworkProfile p;
  p.link.bandwidth_bps = 1'000'000;
  Network net(sim, p);
  Recorder a(sim, 0), b(sim, 1), c(sim, 2);
  net.attach(&a);
  net.attach(&b);
  net.attach(&c);
  net.send(0, 1, Bytes(1000, 0));
  net.send(0, 2, Bytes(1000, 0));
  sim.run();
  EXPECT_EQ(b.received[0].at, kMillisecond);
  EXPECT_EQ(c.received[0].at, 2 * kMillisecond);
}

TEST(NetworkTiming, DistinctSendersDoNotInterfere) {
  Simulator sim;
  NetworkProfile p;
  p.link.bandwidth_bps = 1'000'000;
  Network net(sim, p);
  Recorder a(sim, 0), b(sim, 1), c(sim, 2);
  net.attach(&a);
  net.attach(&b);
  net.attach(&c);
  net.send(0, 2, Bytes(1000, 0));
  net.send(1, 2, Bytes(1000, 0));
  sim.run();
  ASSERT_EQ(c.received.size(), 2u);
  EXPECT_EQ(c.received[0].at, kMillisecond);
  EXPECT_EQ(c.received[1].at, kMillisecond);
}

TEST(NetworkTiming, ReceiverCpuSerializesHandlers) {
  Simulator sim;
  Network net(sim, NetworkProfile{});  // literal zero latency
  Recorder a(sim, 0), b(sim, 1);
  b.cost_per_message = 10 * kMillisecond;
  net.attach(&a);
  net.attach(&b);
  net.send(0, 1, to_bytes("m1"));
  net.send(0, 1, to_bytes("m2"));
  net.send(0, 1, to_bytes("m3"));
  sim.run();
  ASSERT_EQ(b.received.size(), 3u);
  EXPECT_EQ(b.received[0].at, 0u);
  EXPECT_EQ(b.received[1].at, 10 * kMillisecond);
  EXPECT_EQ(b.received[2].at, 20 * kMillisecond);
}

TEST(NetworkTiming, SenderCpuDelaysDeparture) {
  Simulator sim;
  Network net(sim, NetworkProfile{});  // literal zero latency
  Recorder a(sim, 0), b(sim, 1);
  net.attach(&a);
  net.attach(&b);
  // Node 0 does 7 ms of work, then sends (as a protocol handler would).
  sim.schedule_at(0, [&] {
    a.charge(7 * kMillisecond);
    net.send(0, 1, to_bytes("after-work"));
  });
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].at, 7 * kMillisecond);
}

TEST(NetworkTiming, JitterIsBoundedAndDeterministic) {
  auto run_once = [](uint64_t seed) {
    Simulator sim;
    NetworkProfile p;
    p.link.jitter = kMillisecond;
    Network net(sim, p, seed);
    Recorder a(sim, 0), b(sim, 1);
    net.attach(&a);
    net.attach(&b);
    std::vector<SimTime> arrivals;
    for (int i = 0; i < 10; ++i) net.send(0, 1, to_bytes("m"));
    sim.run();
    for (const auto& rx : b.received) arrivals.push_back(rx.at);
    return arrivals;
  };
  const auto a1 = run_once(42);
  const auto a2 = run_once(42);
  const auto b1 = run_once(43);
  EXPECT_EQ(a1, a2);  // deterministic per seed
  EXPECT_NE(a1, b1);  // seed-dependent
  for (SimTime t : a1) EXPECT_LT(t, kMillisecond);
}

TEST(CostModel, ZeroModelChargesNothing) {
  const CostModel m = CostModel::zero();
  EXPECT_EQ(m.cost(Op::kTdh2Encrypt, 100000), 0u);
}

TEST(CostModel, PerByteScaling) {
  CostModel m;
  m.set(Op::kHash, {100, 1024});  // 1 ns per byte at the 1/1024 granularity
  EXPECT_EQ(m.cost(Op::kHash, 0), 100u);
  EXPECT_EQ(m.cost(Op::kHash, 2048), 100u + 2048u);
}

TEST(CostModel, DefaultEraSeparatesSymmetricFromThreshold) {
  const CostModel m = CostModel::default_symmetric_era();
  // The entire premise of the paper: threshold ops are ~1000x symmetric ops.
  EXPECT_GT(m.cost(Op::kTdh2ShareDec), 1000 * m.cost(Op::kMac, 64));
}

}  // namespace
}  // namespace scab::sim
