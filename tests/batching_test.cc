// The batched causal layer (DESIGN.md §10), end to end:
//
//  * BatchingEnvelope — the batched hybrid TDH2 envelope: roundtrip,
//    label binding (tamper / reorder / transplant), all-or-nothing open,
//    and the batch-of-one wire discriminator.
//  * BatchingOpFrame — the client-side operation batch framing.
//  * BatchingWire — seal_envelope_parts is bit-identical to sealing the
//    concatenated body (the zero-copy wire path needs no receiver changes).
//  * BatchingReplica — replica-side regressions: the maybe_send_batch
//    fallback-timer rearm (a full in-flight window must not strand a
//    queued request), late-share drops that never resurrect reveal state,
//    and the bounded early-share stash of CP2/CP3 under a flood.
//  * BatchingRuntime — cross-runtime equivalence of the batched CP0 path:
//    the simulator and the threaded runtime deliver the same plaintexts.
//  * MidBatchCrash — the primary dies while batched envelopes are in
//    flight; after the view change (and the primary's restart) every
//    logical payload executes exactly once, on both runtimes.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bft/batch.h"
#include "bft/client.h"
#include "bft/envelope.h"
#include "bft/keyring.h"
#include "causal/cp0.h"
#include "causal/cp23.h"
#include "causal/harness.h"
#include "threshenc/hybrid.h"

namespace scab {
namespace {

using causal::Cluster;
using causal::ClusterOptions;
using causal::Protocol;
using causal::RuntimeKind;
using crypto::Drbg;
using crypto::ModGroup;

// ---------------------------------------------------------------------------
// BatchingEnvelope — threshenc::HybridBatchCiphertext unit coverage.

const ModGroup& test_group() {
  static const ModGroup grp = [] {
    Drbg rng(to_bytes("batching-test-group"));
    return ModGroup::generate(64, rng);
  }();
  return grp;
}

class BatchingEnvelope : public ::testing::Test {
 protected:
  BatchingEnvelope() : rng_(to_bytes("batching-envelope-test")) {
    keys_ = threshenc::tdh2_keygen(test_group(), 2, 4, rng_);
  }

  // Recovers the shared KEM seed the way replicas do: t = 2 decryption
  // shares against the full (digest-bound) label, then combine.
  Bytes recover_seed(const threshenc::HybridBatchCiphertext& ct,
                     BytesView full_label) {
    std::vector<threshenc::Tdh2DecryptionShare> shares;
    for (uint32_t i = 0; i < 2; ++i) {
      shares.push_back(*threshenc::tdh2_share_decrypt(
          keys_.pk, keys_.shares[i], ct.kem, full_label, rng_));
    }
    return *threshenc::tdh2_combine(keys_.pk, ct.kem, full_label, shares);
  }

  Drbg rng_;
  threshenc::Tdh2KeyMaterial keys_;
};

TEST_F(BatchingEnvelope, RoundTripThroughSerializeAndParse) {
  const std::vector<Bytes> messages = {to_bytes("first payload"), Bytes{},
                                       to_bytes("third, a bit longer than "
                                                "the others put together")};
  const Bytes prefix = to_bytes("client-100:7");
  const auto ct =
      threshenc::hybrid_encrypt_batch(keys_.pk, messages, prefix, rng_);
  ASSERT_EQ(ct.boxes.size(), messages.size());

  const Bytes label = threshenc::hybrid_batch_label(prefix, ct.boxes);
  EXPECT_TRUE(threshenc::hybrid_batch_verify(keys_.pk, ct, label));

  const Bytes wire = ct.serialize(test_group());
  EXPECT_TRUE(threshenc::is_hybrid_batch_wire(wire));
  const auto parsed =
      threshenc::HybridBatchCiphertext::parse(test_group(), wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(threshenc::hybrid_batch_verify(keys_.pk, *parsed, label));

  const Bytes seed = recover_seed(*parsed, label);
  const auto opened =
      threshenc::hybrid_batch_open(*parsed, prefix, label, seed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, messages);
}

TEST_F(BatchingEnvelope, SingleRequestWireIsNeverBatchFramed) {
  // Callers fall back to hybrid_encrypt for a batch of one; its wire must
  // not collide with the batch magic, or the legacy path would change.
  const auto single = threshenc::hybrid_encrypt(keys_.pk, to_bytes("solo"),
                                                to_bytes("L"), rng_);
  EXPECT_FALSE(threshenc::is_hybrid_batch_wire(single.serialize(test_group())));
}

TEST_F(BatchingEnvelope, BoxTamperShiftsTheLabelAndFailsVerification) {
  const std::vector<Bytes> messages = {to_bytes("aaaa"), to_bytes("bbbb")};
  const Bytes prefix = to_bytes("P");
  auto ct = threshenc::hybrid_encrypt_batch(keys_.pk, messages, prefix, rng_);
  const Bytes honest_label = threshenc::hybrid_batch_label(prefix, ct.boxes);

  ct.boxes[1][0] ^= 0x01;
  // The KEM proof is bound to the honest digest, so verification against
  // the recomputed (shifted) label fails before any share is produced...
  const Bytes shifted = threshenc::hybrid_batch_label(prefix, ct.boxes);
  EXPECT_NE(shifted, honest_label);
  EXPECT_FALSE(threshenc::hybrid_batch_verify(keys_.pk, ct, shifted));
  // ...and even with the honest label and seed, the AEAD tag catches it:
  // a batch with ANY bad box opens to nothing, never to a valid prefix.
  const auto opened = threshenc::hybrid_batch_open(
      ct, prefix, honest_label, recover_seed(ct, honest_label));
  EXPECT_FALSE(opened.has_value());
}

TEST_F(BatchingEnvelope, ReorderedBoxesFailEvenWithTheSeed) {
  const std::vector<Bytes> messages = {to_bytes("pos0"), to_bytes("pos1")};
  const Bytes prefix = to_bytes("P");
  auto ct = threshenc::hybrid_encrypt_batch(keys_.pk, messages, prefix, rng_);
  const Bytes honest_label = threshenc::hybrid_batch_label(prefix, ct.boxes);
  const Bytes seed = recover_seed(ct, honest_label);

  std::swap(ct.boxes[0], ct.boxes[1]);
  // Reordering shifts the digest, so the KEM check fails...
  EXPECT_FALSE(threshenc::hybrid_batch_verify(
      keys_.pk, ct, threshenc::hybrid_batch_label(prefix, ct.boxes)));
  // ...and the per-index AD binding rejects transplanted boxes even under
  // a leaked seed (same boxes, wrong positions).
  EXPECT_FALSE(
      threshenc::hybrid_batch_open(ct, prefix, honest_label, seed).has_value());
}

// ---------------------------------------------------------------------------
// BatchingOpFrame — bft/batch.h client-side operation framing.

TEST(BatchingOpFrame, EncodeDecodeRoundTrip) {
  const std::vector<Bytes> ops = {to_bytes("op-a"), Bytes{}, to_bytes("op-c")};
  const Bytes wire = bft::encode_op_batch(ops);
  EXPECT_TRUE(bft::is_op_batch(wire));
  const auto decoded = bft::decode_op_batch(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, ops);
}

TEST(BatchingOpFrame, RejectsNonBatchAndMalformedWires) {
  // A batch of one is submitted unframed, so arbitrary application payloads
  // must not be mistaken for frames.
  EXPECT_FALSE(bft::is_op_batch(to_bytes("PUT k v")));
  EXPECT_FALSE(bft::decode_op_batch(to_bytes("PUT k v")).has_value());
  // Truncation and trailing garbage are both malformed.
  Bytes wire = bft::encode_op_batch({to_bytes("a"), to_bytes("b")});
  Bytes truncated(wire.begin(), wire.end() - 1);
  EXPECT_FALSE(bft::decode_op_batch(truncated).has_value());
  wire.push_back(0x00);
  EXPECT_FALSE(bft::decode_op_batch(wire).has_value());
}

// ---------------------------------------------------------------------------
// BatchingWire — the scatter/gather seal path.

TEST(BatchingWire, SealPartsIsBitIdenticalToSealingTheConcatenation) {
  const bft::KeyRing keys(to_bytes("batching-wire-seed"), {0, 1, 2});
  const Bytes a = to_bytes("header");
  const Bytes b;  // empty parts must not perturb the framing
  const Bytes c = to_bytes("a longer body segment carried by reference");
  const Bytes body = concat(a, b, c);

  for (const auto channel : {bft::Channel::kBft, bft::Channel::kCausal}) {
    const Bytes gathered =
        bft::seal_envelope_parts(keys, channel, 0, 2, {a, b, c});
    const Bytes flat = bft::seal_envelope(keys, channel, 0, 2, body);
    EXPECT_EQ(gathered, flat);

    const auto opened = bft::open_envelope(keys, 2, gathered);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(opened->channel, channel);
    EXPECT_EQ(opened->sender, 0u);
    EXPECT_EQ(opened->body, body);
  }
}

// ---------------------------------------------------------------------------
// BatchingReplica — replica-side regressions in the simulator.

// With a window of ONE in-flight batch and a long fallback timer, every
// request that arrives while the window is full is queued; only the rearm
// chain in maybe_send_batch drains it.  The regression this guards: a
// transient condition (window full at timer fire) used to break the chain
// and strand the queue until the next client arrival — the tail op of a
// workload then only survived via client retransmission.
TEST(BatchingReplica, FallbackTimerDrainsQueuedRequestsWithoutClientRetries) {
  constexpr uint32_t kClients = 4;
  constexpr uint64_t kOpsPerClient = 6;

  ClusterOptions opts;
  opts.protocol = Protocol::kPbft;
  opts.bft = bft::BftConfig::for_f(1);
  opts.bft.max_inflight_batches = 1;
  opts.bft.batch_delay = 10 * host::kMillisecond;
  opts.num_clients = kClients;
  opts.seed = 17;
  Cluster cluster(opts);

  for (uint32_t c = 0; c < kClients; ++c) {
    cluster.client(c).run_closed_loop(
        [c](uint64_t i) {
          return to_bytes("c" + std::to_string(c) + "-" + std::to_string(i));
        },
        kOpsPerClient);
  }
  auto all_done = [&] {
    for (uint32_t c = 0; c < kClients; ++c) {
      if (cluster.client(c).completed_ops() < kOpsPerClient) return false;
    }
    return true;
  };
  const host::Time stop_at = cluster.sim().now() + 60 * host::kSecond;
  cluster.sim().run_while(
      [&] { return all_done() || cluster.sim().now() >= stop_at; });
  ASSERT_TRUE(all_done()) << "workload stalled with a full in-flight window";

  uint64_t retries = 0;
  for (uint32_t c = 0; c < kClients; ++c) {
    retries += cluster.client_metrics(c).counter("client.retries").value();
  }
  // The fallback timer — not client retransmission — must be what keeps
  // the queue moving; a single retry here means a request sat for the full
  // 500 ms client timeout, i.e. the rearm chain broke again.
  EXPECT_EQ(retries, 0u);
  for (uint32_t r = 0; r < cluster.n(); ++r) {
    EXPECT_LE(
        cluster.replica_metrics(r).histogram("bft.inflight_batches").max(), 1u)
        << "replica " << r << " violated max_inflight_batches";
  }
}

// Shares that arrive after a reveal completed are dropped on the floor and
// must never resurrect reveal state for a finished request.
TEST(BatchingReplica, LateSharesAreDroppedWithoutResurrectingRevealState) {
  ClusterOptions opts;
  opts.protocol = Protocol::kCp0;
  opts.bft = bft::BftConfig::for_f(1);
  opts.num_clients = 1;
  opts.seed = 19;
  Cluster cluster(opts);

  // Replica 3's outbound traffic lags 50 ms: replicas 0-2 finish each
  // reveal among themselves (f + 1 = 2 shares suffice), then 3's share
  // lands on completed requests.
  for (uint32_t r = 0; r < 3; ++r) {
    cluster.faults().delay(3, r, 50 * host::kMillisecond);
  }
  constexpr int kOps = 12;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(
        cluster.run_one(0, to_bytes("op-" + std::to_string(i))).has_value())
        << i;
  }
  // Let the delayed shares land.
  const host::Time settle = cluster.sim().now() + 1 * host::kSecond;
  cluster.sim().run_while([&] { return cluster.sim().now() >= settle; });

  uint64_t dropped = 0;
  for (uint32_t r = 0; r < 3; ++r) {
    dropped +=
        cluster.replica_metrics(r).counter("cp0.late_shares_dropped").value();
  }
  EXPECT_GT(dropped, 0u) << "the delay never produced a late share";
  for (uint32_t r = 0; r < cluster.n(); ++r) {
    const auto& app =
        dynamic_cast<causal::Cp0ReplicaApp&>(cluster.replica_app(r));
    EXPECT_EQ(app.pending_count(), 0u)
        << "replica " << r << " resurrected reveal state for a finished op";
  }
}

// CP2/CP3 stash shares that arrive before the commitment delivers in a
// bounded per-sender FIFO (kCpMaxEarlySharesPerSender).  Flooding one
// replica with shares for requests it cannot deliver yet (its BFT traffic
// is delayed) must leave the stash bounded — and the cluster must still
// converge once the links heal, exercising the share re-request recovery
// for the evicted entries.
class BatchingReplicaEarlyShares
    : public ::testing::TestWithParam<Protocol> {};

TEST_P(BatchingReplicaEarlyShares, StashStaysBoundedUnderFlood) {
  ClusterOptions opts;
  opts.protocol = GetParam();
  opts.bft = bft::BftConfig::for_f(1);
  opts.bft.checkpoint_interval = 8;
  opts.num_clients = 1;
  opts.seed = 29;
  Cluster cluster(opts);

  auto early_count = [&](uint32_t r) -> std::size_t {
    if (GetParam() == Protocol::kCp2) {
      return dynamic_cast<causal::Cp2ReplicaApp&>(cluster.replica_app(r))
          .early_share_count();
    }
    return dynamic_cast<causal::Cp3ReplicaApp&>(cluster.replica_app(r))
        .early_share_count();
  };

  // Replica 3 hears the client's shares immediately but every replica's
  // traffic towards it (pre-prepares included) lags a full second, so for
  // the whole burst it stashes shares for undelivered requests.
  for (uint32_t r = 0; r < 3; ++r) {
    cluster.faults().delay(r, 3, 1 * host::kSecond);
  }
  constexpr int kOps = 40;  // > kCpMaxEarlySharesPerSender: forces eviction
  static_assert(kOps > static_cast<int>(causal::kCpMaxEarlySharesPerSender));
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(
        cluster.run_one(0, to_bytes("op-" + std::to_string(i))).has_value())
        << i;
  }

  // The client alone pushed kOps shares at replica 3; whatever the other
  // senders contributed, no per-sender FIFO may exceed the cap.  n + 1
  // distinct senders (replicas + the client) bound the total.
  const std::size_t cap =
      causal::kCpMaxEarlySharesPerSender * (cluster.n() + 1);
  EXPECT_GT(early_count(3), 0u) << "the flood never stashed an early share";
  EXPECT_LE(early_count(3), cap);
  const char* gauge = GetParam() == Protocol::kCp2 ? "cp2.early_shares"
                                                   : "cp3.early_shares";
  EXPECT_LE(static_cast<std::size_t>(
                cluster.replica_metrics(3).gauge(gauge).max()),
            cap)
      << "the stash exceeded its bound at some point during the flood";

  // Heal and let replica 3 catch up: evicted shares force the reveal
  // re-request path, so convergence proves eviction is recoverable.
  cluster.faults().clear_delays();
  auto converged = [&] {
    for (uint32_t r = 0; r < cluster.n(); ++r) {
      if (cluster.replica_executed(r) <
          static_cast<uint64_t>(kOps)) {
        return false;
      }
    }
    return true;
  };
  const host::Time stop_at = cluster.sim().now() + 120 * host::kSecond;
  cluster.sim().run_while(
      [&] { return converged() || cluster.sim().now() >= stop_at; });
  EXPECT_TRUE(converged()) << "replica 3 never recovered the evicted shares";
}

INSTANTIATE_TEST_SUITE_P(Protocols, BatchingReplicaEarlyShares,
                         ::testing::Values(Protocol::kCp2, Protocol::kCp3),
                         [](const auto& info) {
                           return std::string(
                               causal::protocol_name(info.param));
                         });

// ---------------------------------------------------------------------------
// Batched workloads: shared service + driver for the cross-runtime and
// mid-batch-crash tests.

// Records every executed plaintext in order.  The mutex keeps the log safe
// under rt::ThreadHost, where each replica executes on its own worker while
// the controlling thread polls.
class LogService : public causal::Service {
 public:
  Bytes execute(host::NodeId /*client*/, BytesView op) override {
    std::lock_guard<std::mutex> lk(mu_);
    log_.emplace_back(op.begin(), op.end());
    return to_bytes("ok");
  }
  std::vector<Bytes> log() const {
    std::lock_guard<std::mutex> lk(mu_);
    return log_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Bytes> log_;
};

Bytes marker(uint32_t client, uint64_t index) {
  return to_bytes("c" + std::to_string(client) + "-op" + std::to_string(index));
}

// Starts every client's pipelined closed loop (on its own worker under
// kThreads, directly under kSim).
void start_loops(Cluster& cluster, uint64_t ops_per_client) {
  for (uint32_t c = 0; c < cluster.num_clients(); ++c) {
    bft::Client& client = cluster.client(c);
    auto gen = [c](uint64_t i) { return marker(c, i); };
    if (cluster.options().runtime == RuntimeKind::kSim) {
      client.run_closed_loop(gen, ops_per_client);
    } else {
      cluster.host().post(client.id(), [&client, gen, ops_per_client] {
        client.run_closed_loop(gen, ops_per_client);
      });
    }
  }
}

// Runs the cluster until `done` holds or the (virtual / wall) deadline
// passes; returns done().
template <typename Pred>
bool run_until(Cluster& cluster, Pred done, host::Time deadline) {
  if (cluster.options().runtime == RuntimeKind::kSim) {
    const host::Time stop_at = cluster.sim().now() + deadline;
    cluster.sim().run_while(
        [&] { return done() || cluster.sim().now() >= stop_at; });
  } else {
    const auto stop_at = std::chrono::steady_clock::now() +
                         std::chrono::nanoseconds(deadline);
    while (!done() && std::chrono::steady_clock::now() < stop_at) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return done();
}

// ---------------------------------------------------------------------------
// BatchingRuntime — cross-runtime equivalence of the batched CP0 path.

// Runs a batched+pipelined CP0 workload and returns the sorted multiset of
// plaintexts replica 0 executed (asserting every replica's multiset
// matches it first).
std::vector<Bytes> run_batched_workload(RuntimeKind runtime) {
  constexpr uint32_t kClients = 2;
  constexpr uint64_t kOpsPerClient = 16;

  ClusterOptions opts;
  opts.protocol = Protocol::kCp0;
  opts.runtime = runtime;
  opts.bft = bft::BftConfig::for_f(1);
  opts.num_clients = kClients;
  opts.seed = 7;
  opts.client_batch = 4;
  opts.client_inflight = 2;
  opts.service_factory = [] { return std::make_unique<LogService>(); };
  Cluster cluster(opts);

  start_loops(cluster, kOpsPerClient);
  auto all_done = [&] {
    for (uint32_t c = 0; c < kClients; ++c) {
      if (cluster.client(c).completed_ops() < kOpsPerClient) return false;
    }
    // The client completes on an f+1 quorum; wait for the stragglers too.
    // The BFT-layer executed counter is not enough here: CP0 executes the
    // payloads only after the reveal, so a straggler can match replica 0's
    // ordered-request count while its last envelope is still collecting
    // shares — poll the service log (payload granularity) instead.
    for (uint32_t r = 0; r < cluster.n(); ++r) {
      if (dynamic_cast<LogService&>(cluster.service(r)).log().size() !=
          kClients * kOpsPerClient) {
        return false;
      }
    }
    return true;
  };
  EXPECT_TRUE(run_until(cluster, all_done, 60 * host::kSecond))
      << "batched workload did not complete on "
      << (runtime == RuntimeKind::kSim ? "sim" : "threads");
  cluster.shutdown();

  // The batching path must actually have been exercised: at least one full
  // 4-payload envelope reached some replica.
  uint64_t widest_envelope = 0;
  for (uint32_t r = 0; r < cluster.n(); ++r) {
    widest_envelope =
        std::max(widest_envelope,
                 cluster.replica_metrics(r).histogram("cp0.batch_size").max());
  }
  EXPECT_GE(widest_envelope, 4u) << "no full batched envelope was delivered";

  std::vector<Bytes> reference =
      dynamic_cast<LogService&>(cluster.service(0)).log();
  std::sort(reference.begin(), reference.end());
  for (uint32_t r = 1; r < cluster.n(); ++r) {
    std::vector<Bytes> log =
        dynamic_cast<LogService&>(cluster.service(r)).log();
    std::sort(log.begin(), log.end());
    EXPECT_EQ(log, reference) << "replica " << r << " diverged on "
                              << (runtime == RuntimeKind::kSim ? "sim"
                                                               : "threads");
  }
  return reference;
}

TEST(BatchingRuntime, SimAndThreadsDeliverTheSamePlaintexts) {
  const std::vector<Bytes> sim = run_batched_workload(RuntimeKind::kSim);
  const std::vector<Bytes> threads =
      run_batched_workload(RuntimeKind::kThreads);
  EXPECT_EQ(sim, threads);

  // And the delivered set is exactly the submitted set — nothing dropped,
  // nothing invented, nothing doubled by the batching path.
  std::vector<Bytes> expected;
  for (uint32_t c = 0; c < 2; ++c) {
    for (uint64_t i = 0; i < 16; ++i) expected.push_back(marker(c, i));
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sim, expected);
}

// ---------------------------------------------------------------------------
// MidBatchCrash — the primary dies while batched envelopes are in flight.

class MidBatchCrash : public ::testing::TestWithParam<RuntimeKind> {};

TEST_P(MidBatchCrash, PrimaryCrashLosesNoPayloadAndExecutesNoneTwice) {
  const RuntimeKind runtime = GetParam();
  constexpr uint32_t kClients = 2;
  constexpr uint64_t kOpsPerClient = 24;  // 6 four-payload envelopes each
  constexpr uint64_t kTotal = kClients * kOpsPerClient;

  ClusterOptions opts;
  opts.protocol = Protocol::kCp0;
  opts.runtime = runtime;
  opts.bft = bft::BftConfig::for_f(1);
  opts.bft.checkpoint_interval = 4;
  opts.bft.request_timeout = 300 * host::kMillisecond;
  opts.bft.watchdog_period = 50 * host::kMillisecond;
  opts.num_clients = kClients;
  opts.seed = 23;
  opts.client_batch = 4;
  opts.client_inflight = 2;
  opts.service_factory = [] { return std::make_unique<LogService>(); };
  Cluster cluster(opts);

  auto completed = [&] {
    uint64_t total = 0;
    for (uint32_t c = 0; c < kClients; ++c) {
      total += cluster.client(c).completed_ops();
    }
    return total;
  };

  start_loops(cluster, kOpsPerClient);

  // Phase 1: let a couple of envelopes land, then kill the primary while
  // both clients still have batched envelopes in flight (the closed loop
  // keeps the inflight window full until the tail).
  ASSERT_TRUE(run_until(cluster, [&] { return completed() >= 8; },
                        60 * host::kSecond))
      << "workload never started";
  ASSERT_LT(completed(), kTotal) << "workload finished before the crash";
  cluster.crash_replica(0);  // view-0 primary

  // Phase 2: the watchdog demotes the dead primary; progress resumes in
  // view 1 on the surviving 2f + 1 quorum.  Once past the halfway mark,
  // bring the old primary back (it rejoins via checkpoint catch-up).
  ASSERT_TRUE(run_until(cluster, [&] { return completed() >= kTotal / 2; },
                        120 * host::kSecond))
      << "no progress after the primary crash (view change stalled)";
  cluster.restart_replica(0);

  // Phase 3: everything completes and the survivors converge.
  auto done = [&] {
    if (completed() < kTotal) return false;
    for (uint32_t r = 1; r < cluster.n(); ++r) {
      if (cluster.replica_executed(r) != cluster.replica_executed(1)) {
        return false;
      }
    }
    return true;
  };
  ASSERT_TRUE(run_until(cluster, done, 120 * host::kSecond))
      << "workload did not finish after the restart ("
      << completed() << "/" << kTotal << " payloads)";
  cluster.shutdown();

  // Exactly-once: on every surviving replica each logical payload of every
  // envelope — including the ones mid-flight at the crash — appears exactly
  // once; the restarted replica (whose fresh log starts at its catch-up
  // point) must at least never double-execute.
  std::vector<Bytes> expected;
  for (uint32_t c = 0; c < kClients; ++c) {
    for (uint64_t i = 0; i < kOpsPerClient; ++i) {
      expected.push_back(marker(c, i));
    }
  }
  for (uint32_t r = 0; r < cluster.n(); ++r) {
    const std::vector<Bytes> log =
        dynamic_cast<LogService&>(cluster.service(r)).log();
    for (const Bytes& m : expected) {
      const auto copies = std::count(log.begin(), log.end(), m);
      if (r == 0) {
        EXPECT_LE(copies, 1)
            << "restarted replica executed " << to_string(m) << " twice";
      } else {
        EXPECT_EQ(copies, 1)
            << "replica " << r << " executed " << to_string(m) << " "
            << copies << " times";
      }
    }
  }
  // The survivors executed the same totally-ordered sequence.
  const std::vector<Bytes> ref =
      dynamic_cast<LogService&>(cluster.service(1)).log();
  for (uint32_t r = 2; r < cluster.n(); ++r) {
    EXPECT_EQ(dynamic_cast<LogService&>(cluster.service(r)).log(), ref)
        << "surviving replicas diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Runtimes, MidBatchCrash,
                         ::testing::Values(RuntimeKind::kSim,
                                           RuntimeKind::kThreads),
                         [](const auto& info) {
                           return info.param == RuntimeKind::kSim ? "Sim"
                                                                  : "Threads";
                         });

}  // namespace
}  // namespace scab
