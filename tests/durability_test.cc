// Durable replica state (DESIGN.md §13), end to end through the harness:
//
//  * attaching storage perturbs nothing — a seeded sim run is identical
//    with and without it (same replies, same counts, same virtual end time);
//  * a FULL-cluster crash + restart recovers every replica from its
//    attached storage with no loss and no re-execution, on every protocol
//    and both runtimes;
//  * a file-backed cluster torn down completely (the in-process model of a
//    power loss) resumes exactly from its data directory.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bft/client.h"
#include "bft/replica.h"
#include "causal/harness.h"

namespace scab::causal {
namespace {

constexpr Protocol kAllProtocols[] = {Protocol::kPbft, Protocol::kCp0,
                                      Protocol::kCp1, Protocol::kCp2,
                                      Protocol::kCp3};

ClusterOptions base_options(Protocol p, RuntimeKind runtime) {
  ClusterOptions opts;
  opts.protocol = p;
  opts.runtime = runtime;
  opts.bft = bft::BftConfig::for_f(1);
  opts.bft.checkpoint_interval = 4;  // snapshots early and often
  opts.num_clients = 2;
  opts.seed = 7;
  return opts;
}

Bytes op(int i) { return to_bytes("durable-op-" + std::to_string(i)); }

EchoService& echo(Cluster& cluster, uint32_t i) {
  auto* svc = dynamic_cast<EchoService*>(&cluster.service(i));
  EXPECT_NE(svc, nullptr);
  return *svc;
}

/// Runs `count` ops from client `ci`, asserting each completes.
void run_ops(Cluster& cluster, uint32_t ci, int from, int count) {
  for (int i = from; i < from + count; ++i) {
    ASSERT_TRUE(cluster.run_one(ci, op(i)).has_value()) << "op " << i;
  }
}

/// Waits until every replica's EchoService executed exactly `expected` ops
/// (laggards catch up via fetch); fails the test on timeout.
void await_converged(Cluster& cluster, uint64_t expected) {
  if (cluster.options().runtime == RuntimeKind::kSim) {
    sim::Simulator& sim = cluster.sim();
    const host::Time stop_at = sim.now() + 30 * host::kSecond;
    sim.run_while([&] {
      bool all = true;
      for (uint32_t i = 0; i < cluster.n(); ++i) {
        all = all && echo(cluster, i).executed() == expected;
      }
      return all || sim.now() >= stop_at;
    });
  } else {
    const auto stop_at =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      bool all = true;
      for (uint32_t i = 0; i < cluster.n(); ++i) {
        all = all && echo(cluster, i).executed() == expected;
      }
      if (all || std::chrono::steady_clock::now() >= stop_at) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (uint32_t i = 0; i < cluster.n(); ++i) {
    // Exact equality IS the invariant: fewer = loss, more = re-execution.
    EXPECT_EQ(echo(cluster, i).executed(), expected) << "replica " << i;
  }
}

// ---------------------------------------------------------------------------
// Determinism: storage on/off identical outputs

TEST(DurabilitySim, StorageAttachmentPerturbsNothing) {
  for (Protocol p : kAllProtocols) {
    std::vector<Bytes> replies_off;
    host::Time end_off = 0;
    {
      ClusterOptions opts = base_options(p, RuntimeKind::kSim);
      Cluster cluster(opts);
      for (int i = 0; i < 8; ++i) {
        auto r = cluster.run_one(0, op(i));
        ASSERT_TRUE(r.has_value());
        replies_off.push_back(*r);
      }
      end_off = cluster.sim().now();
    }
    ClusterOptions opts = base_options(p, RuntimeKind::kSim);
    opts.durability = ClusterOptions::Durability::kMem;
    Cluster cluster(opts);
    for (int i = 0; i < 8; ++i) {
      auto r = cluster.run_one(0, op(i));
      ASSERT_TRUE(r.has_value());
      EXPECT_EQ(*r, replies_off[static_cast<std::size_t>(i)])
          << protocol_name(p) << " op " << i;
    }
    // MemStorage does no I/O and reads no clock: the event schedule — and
    // so the virtual completion time — is bit-identical.
    EXPECT_EQ(cluster.sim().now(), end_off) << protocol_name(p);
  }
}

// ---------------------------------------------------------------------------
// Full-cluster crash + restart (the sim model of a power loss)

TEST(DurabilitySim, FullClusterRestartRecoversAllProtocols) {
  for (Protocol p : kAllProtocols) {
    SCOPED_TRACE(protocol_name(p));
    ClusterOptions opts = base_options(p, RuntimeKind::kSim);
    opts.durability = ClusterOptions::Durability::kMem;
    Cluster cluster(opts);

    run_ops(cluster, 0, 0, 10);
    await_converged(cluster, 10);

    for (uint32_t i = 0; i < cluster.n(); ++i) cluster.crash_replica(i);
    for (uint32_t i = 0; i < cluster.n(); ++i) cluster.restart_replica(i);

    for (uint32_t i = 0; i < cluster.n(); ++i) {
      // Recovery under kSim runs inline in restart_replica: the service
      // state is already back before any new traffic.
      EXPECT_EQ(echo(cluster, i).executed(), 10u) << "replica " << i;
      EXPECT_GE(cluster.replica_metrics(i)
                    .counter("bft.recovery.snapshot_loaded")
                    .value(),
                1u)
          << "replica " << i;
    }

    run_ops(cluster, 1, 100, 10);
    await_converged(cluster, 20);
  }
}

TEST(DurabilitySim, WalAloneRecoversBeforeFirstCheckpoint) {
  // 2 ops < checkpoint_interval: no snapshot exists yet, so recovery is
  // pure WAL replay.
  ClusterOptions opts = base_options(Protocol::kPbft, RuntimeKind::kSim);
  opts.durability = ClusterOptions::Durability::kMem;
  Cluster cluster(opts);
  run_ops(cluster, 0, 0, 2);
  await_converged(cluster, 2);

  for (uint32_t i = 0; i < cluster.n(); ++i) cluster.crash_replica(i);
  for (uint32_t i = 0; i < cluster.n(); ++i) cluster.restart_replica(i);

  for (uint32_t i = 0; i < cluster.n(); ++i) {
    EXPECT_EQ(echo(cluster, i).executed(), 2u) << "replica " << i;
    EXPECT_EQ(cluster.replica_metrics(i)
                  .counter("bft.recovery.snapshot_loaded")
                  .value(),
              0u);
    EXPECT_GE(cluster.replica_metrics(i)
                  .counter("bft.recovery.wal_replayed")
                  .value(),
              1u);
  }
  run_ops(cluster, 1, 100, 4);
  await_converged(cluster, 6);
}

TEST(DurabilityThreads, MemFullClusterRestartRecovers) {
  ClusterOptions opts = base_options(Protocol::kCp1, RuntimeKind::kThreads);
  opts.durability = ClusterOptions::Durability::kMem;
  Cluster cluster(opts);

  run_ops(cluster, 0, 0, 10);
  for (uint32_t i = 0; i < cluster.n(); ++i) cluster.crash_replica(i);
  for (uint32_t i = 0; i < cluster.n(); ++i) cluster.restart_replica(i);

  run_ops(cluster, 1, 100, 10);
  await_converged(cluster, 20);
  for (uint32_t i = 0; i < cluster.n(); ++i) {
    EXPECT_GE(cluster.replica_metrics(i)
                      .counter("bft.recovery.snapshot_loaded")
                      .value() +
                  cluster.replica_metrics(i)
                      .counter("bft.recovery.wal_replayed")
                      .value(),
              1u)
        << "replica " << i << " recovered nothing from storage";
  }
  cluster.shutdown();
}

// ---------------------------------------------------------------------------
// File-backed power loss: tear the whole cluster down, rebuild it from the
// data directory alone.

TEST(DurabilityThreads, FileBackedColdRestartResumesExactly) {
  std::string tmpl = ::testing::TempDir() + "scab_durability_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
  const std::string data_dir = tmpl;

  ClusterOptions opts = base_options(Protocol::kCp0, RuntimeKind::kThreads);
  opts.durability = ClusterOptions::Durability::kFile;
  opts.data_dir = data_dir;

  {
    Cluster cluster(opts);
    run_ops(cluster, 0, 0, 10);
    await_converged(cluster, 10);
    cluster.shutdown();
  }

  {
    // Same options, same directory, brand-new processes-worth of state:
    // everything volatile is gone; only the FileStorage directories remain.
    Cluster cluster(opts);
    await_converged(cluster, 10);  // restored, not re-executed
    for (uint32_t i = 0; i < cluster.n(); ++i) {
      EXPECT_GE(cluster.replica_metrics(i)
                    .counter("bft.recovery.snapshot_loaded")
                    .value(),
                1u)
          << "replica " << i;
      EXPECT_GE(cluster.replica_metrics(i)
                    .histogram("storage.wal_append_bytes")
                    .count(),
                0u);
    }
    // Client 1 was never used in the first life, so its sequence numbers
    // are fresh (replica-side dedup is keyed on (client, seq)).
    run_ops(cluster, 1, 100, 10);
    await_converged(cluster, 20);
    cluster.shutdown();
  }

  ASSERT_EQ(std::system(("rm -rf '" + data_dir + "'").c_str()), 0);
}

}  // namespace
}  // namespace scab::causal
