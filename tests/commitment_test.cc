#include "crypto/commitment.h"

#include <gtest/gtest.h>

namespace scab::crypto {
namespace {

class CommitmentTest : public ::testing::Test {
 protected:
  Drbg rng_{to_bytes("commitment-test")};
};

TEST_F(CommitmentTest, ConventionalCommitOpen) {
  Commitment cs(Commitment::cgen(rng_));
  const Bytes m = to_bytes("a message");
  const Committed c = cs.commit(m, rng_);
  EXPECT_TRUE(cs.open(c.commitment, m, c.decommitment));
}

TEST_F(CommitmentTest, ConventionalRejectsWrongMessage) {
  Commitment cs(Commitment::cgen(rng_));
  const Committed c = cs.commit(to_bytes("m1"), rng_);
  EXPECT_FALSE(cs.open(c.commitment, to_bytes("m2"), c.decommitment));
}

TEST_F(CommitmentTest, ConventionalRejectsWrongCoin) {
  Commitment cs(Commitment::cgen(rng_));
  const Bytes m = to_bytes("m");
  const Committed c = cs.commit(m, rng_);
  Bytes bad = c.decommitment;
  bad[5] ^= 1;
  EXPECT_FALSE(cs.open(c.commitment, m, bad));
  EXPECT_FALSE(cs.open(c.commitment, m, Bytes{}));
  EXPECT_FALSE(cs.open(c.commitment, m, Bytes(31, 0)));
}

TEST_F(CommitmentTest, HidingSmokeTest) {
  // Commitments to equal messages with fresh coins are unlinkable;
  // commitments reveal nothing recognizable about the message.
  Commitment cs(Commitment::cgen(rng_));
  const Bytes m = to_bytes("same message");
  const Committed c1 = cs.commit(m, rng_);
  const Committed c2 = cs.commit(m, rng_);
  EXPECT_NE(c1.commitment, c2.commitment);
}

TEST_F(CommitmentTest, KeySeparatesDeployments) {
  Commitment cs1(Commitment::cgen(rng_));
  Commitment cs2(Commitment::cgen(rng_));
  const Bytes m = to_bytes("m");
  const Committed c = cs1.commit(m, rng_);
  EXPECT_FALSE(cs2.open(c.commitment, m, c.decommitment));
}

TEST_F(CommitmentTest, NmCadCommitOpen) {
  NmCadCommitment cs(NmCadCommitment::cgen(rng_));
  const Bytes h = to_bytes("client-7:seq-3");
  const Bytes m = to_bytes("buy 100 shares");
  const Committed c = cs.commit(h, m, rng_);
  EXPECT_TRUE(cs.open(h, c.commitment, m, c.decommitment));
}

TEST_F(CommitmentTest, NmCadBindsHeader) {
  // The associated-data is part of the commitment: opening under a different
  // header must fail.  This is exactly what stops a faulty replica from
  // replaying a commitment under its own colluding client's identity (the
  // front-running attack of §I).
  NmCadCommitment cs(NmCadCommitment::cgen(rng_));
  const Bytes m = to_bytes("buy 100 shares");
  const Committed c = cs.commit(to_bytes("honest-client:1"), m, rng_);
  EXPECT_FALSE(cs.open(to_bytes("corrupt-client:1"), c.commitment, m,
                       c.decommitment));
}

TEST_F(CommitmentTest, NmCadRejectsWrongMessageOrCoin) {
  NmCadCommitment cs(NmCadCommitment::cgen(rng_));
  const Bytes h = to_bytes("h");
  const Committed c = cs.commit(h, to_bytes("m"), rng_);
  EXPECT_FALSE(cs.open(h, c.commitment, to_bytes("m'"), c.decommitment));
  Bytes bad = c.decommitment;
  bad[0] ^= 1;
  EXPECT_FALSE(cs.open(h, c.commitment, to_bytes("m"), bad));
}

TEST_F(CommitmentTest, NmCadEmptyMessageAndHeader) {
  NmCadCommitment cs(NmCadCommitment::cgen(rng_));
  const Committed c = cs.commit({}, {}, rng_);
  EXPECT_TRUE(cs.open({}, c.commitment, {}, c.decommitment));
  EXPECT_FALSE(cs.open(to_bytes("x"), c.commitment, {}, c.decommitment));
}

TEST_F(CommitmentTest, ConcurrentCommitmentsAreIndependent) {
  // The concurrent setting of §IV-B: an adversary holding many commitments
  // cannot mix-and-match openings across them — each (header, message,
  // coin) triple binds exactly one commitment.
  NmCadCommitment cs(NmCadCommitment::cgen(rng_));
  struct Item {
    Bytes h, m;
    Committed c;
  };
  std::vector<Item> items;
  for (int i = 0; i < 8; ++i) {
    Item it;
    it.h = to_bytes("client-" + std::to_string(i));
    it.m = to_bytes("message-" + std::to_string(i));
    it.c = cs.commit(it.h, it.m, rng_);
    items.push_back(std::move(it));
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = 0; j < items.size(); ++j) {
      const bool ok = cs.open(items[i].h, items[i].c.commitment, items[j].m,
                              items[j].c.decommitment);
      EXPECT_EQ(ok, i == j) << i << "," << j;
      if (i != j) {
        // Cross headers with matching message/coin also fail.
        EXPECT_FALSE(cs.open(items[j].h, items[i].c.commitment, items[i].m,
                             items[i].c.decommitment));
      }
    }
  }
}

TEST_F(CommitmentTest, OpeningIsNotReusableAsCoinForOtherMessages) {
  // A malleability probe: given (c, m, d), the adversary tries to reuse d
  // as the coin for a related message under its own header.
  NmCadCommitment cs(NmCadCommitment::cgen(rng_));
  const Bytes h1 = to_bytes("victim:1");
  const Bytes m = to_bytes("BUY 100 ACME");
  const Committed c = cs.commit(h1, m, rng_);

  const Bytes h2 = to_bytes("attacker:1");
  // The attacker's "derived commitment" built from public material plus the
  // now-revealed opening cannot verify for any related message it can name.
  for (const auto& derived :
       {to_bytes("BUY 100 ACME"), to_bytes("BUY 101 ACME"), m}) {
    EXPECT_FALSE(cs.open(h2, c.commitment, derived, c.decommitment));
  }
}

TEST_F(CommitmentTest, CommitmentSizeIsConstant) {
  NmCadCommitment cs(NmCadCommitment::cgen(rng_));
  const Committed small = cs.commit(to_bytes("h"), Bytes(1, 0), rng_);
  const Committed large = cs.commit(to_bytes("h"), Bytes(100000, 0), rng_);
  EXPECT_EQ(small.commitment.size(), large.commitment.size());
  EXPECT_EQ(small.commitment.size(), 32u);
}

}  // namespace
}  // namespace scab::crypto
