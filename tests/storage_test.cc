// rt::FileStorage (DESIGN.md §13): blob + WAL round-trips across reopen,
// torn-tail truncation, and a bit-flip fuzz sweep asserting the CRC framing
// never surfaces a corrupt record — recovery always sees a clean prefix of
// the appended sequence.
#include "rt/storage.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "host/storage.h"

namespace scab::rt {
namespace {

class FileStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string tmpl = ::testing::TempDir() + "scab_storage_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
    root_ = tmpl;
  }
  void TearDown() override {
    const std::string cmd = "rm -rf '" + root_ + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
  }

  std::string dir(const std::string& name) const { return root_ + "/" + name; }
  std::string wal_path(const std::string& name) const {
    return dir(name) + "/wal.log";
  }

  static Bytes record(std::size_t i) {
    Bytes r = to_bytes("record-" + std::to_string(i) + "-");
    for (std::size_t k = 0; k < i % 7; ++k) r.push_back(static_cast<uint8_t>(k));
    return r;
  }

  static std::vector<Bytes> replay_all(const host::Storage& s) {
    std::vector<Bytes> out;
    s.replay([&](BytesView r) { out.emplace_back(r.begin(), r.end()); });
    return out;
  }

  std::string root_;
};

TEST_F(FileStorageTest, BlobAndWalSurviveReopen) {
  std::vector<Bytes> written;
  {
    FileStorage s(dir("a"));
    ASSERT_TRUE(s.ok()) << s.error();
    s.put("snapshot", to_bytes("state-v1"));
    s.put("meta", to_bytes("m"));
    for (std::size_t i = 0; i < 10; ++i) {
      written.push_back(record(i));
      s.append(written.back());
    }
    s.sync();
    EXPECT_EQ(s.log_records(), 10u);
    // Overwrite is atomic-by-rename: the new value fully replaces the old.
    s.put("snapshot", to_bytes("state-v2"));
    s.erase("meta");
  }
  FileStorage s(dir("a"));
  ASSERT_TRUE(s.ok()) << s.error();
  EXPECT_EQ(s.get("snapshot"), to_bytes("state-v2"));
  EXPECT_FALSE(s.get("meta").has_value());
  EXPECT_FALSE(s.get("never").has_value());
  EXPECT_EQ(replay_all(s), written);
  EXPECT_EQ(s.log_records(), 10u);

  s.truncate_log();
  EXPECT_EQ(s.log_records(), 0u);
  EXPECT_TRUE(replay_all(s).empty());
  // Appends after a truncation land in a fresh log.
  s.append(record(99));
  s.sync();
  FileStorage again(dir("a"));
  EXPECT_EQ(replay_all(again), std::vector<Bytes>{record(99)});
}

TEST_F(FileStorageTest, AsyncModeSameContract) {
  {
    FileStorage s(dir("async"), FileStorage::Options{/*fsync=*/false});
    ASSERT_TRUE(s.ok()) << s.error();
    s.put("k", to_bytes("v"));
    s.append(record(1));
    s.sync();
  }
  FileStorage s(dir("async"), FileStorage::Options{/*fsync=*/false});
  EXPECT_EQ(s.get("k"), to_bytes("v"));
  EXPECT_EQ(replay_all(s).size(), 1u);
}

TEST_F(FileStorageTest, TornTailIsTruncatedOnOpen) {
  std::vector<Bytes> written;
  {
    FileStorage s(dir("torn"));
    ASSERT_TRUE(s.ok()) << s.error();
    for (std::size_t i = 0; i < 6; ++i) {
      written.push_back(record(i));
      s.append(written.back());
    }
    s.sync();
  }
  // Tear the last frame in half, as a power loss mid-write would.
  FILE* f = std::fopen(wal_path("torn").c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_EQ(std::fclose(f), 0);
  ASSERT_EQ(::truncate(wal_path("torn").c_str(), size - 5), 0);

  FileStorage s(dir("torn"));
  ASSERT_TRUE(s.ok()) << s.error();
  written.pop_back();
  EXPECT_EQ(replay_all(s), written);
  // The write offset sits at the end of the valid prefix: new appends chain
  // cleanly after it.
  s.append(record(42));
  s.sync();
  written.push_back(record(42));
  FileStorage again(dir("torn"));
  EXPECT_EQ(replay_all(again), written);
}

// Flip a single bit at EVERY byte position of a valid WAL in turn.  However
// the file is damaged, recovery must yield a clean prefix of the original
// record sequence — never a mutated or invented record.
TEST_F(FileStorageTest, BitFlipFuzzNeverYieldsCorruptRecord) {
  std::vector<Bytes> written;
  {
    FileStorage s(dir("fuzz"));
    ASSERT_TRUE(s.ok()) << s.error();
    for (std::size_t i = 0; i < 5; ++i) {
      written.push_back(record(i));
      s.append(written.back());
    }
    s.sync();
  }
  FILE* f = std::fopen(wal_path("fuzz").c_str(), "rb");
  ASSERT_NE(f, nullptr);
  Bytes clean;
  int c;
  while ((c = std::fgetc(f)) != EOF) clean.push_back(static_cast<uint8_t>(c));
  ASSERT_EQ(std::fclose(f), 0);
  ASSERT_FALSE(clean.empty());

  for (std::size_t pos = 0; pos < clean.size(); ++pos) {
    Bytes corrupt = clean;
    corrupt[pos] ^= 1u << (pos % 8);
    const std::string d = dir("fuzz_case");
    ASSERT_EQ(std::system(("rm -rf '" + d + "' && mkdir '" + d + "'").c_str()),
              0);
    FILE* out = std::fopen((d + "/wal.log").c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(std::fwrite(corrupt.data(), 1, corrupt.size(), out),
              corrupt.size());
    ASSERT_EQ(std::fclose(out), 0);

    FileStorage s(d);
    ASSERT_TRUE(s.ok()) << "byte " << pos << ": " << s.error();
    const std::vector<Bytes> got = replay_all(s);
    ASSERT_LT(got.size(), written.size()) << "flip at byte " << pos
                                          << " was not detected";
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], written[i])
          << "flip at byte " << pos << " surfaced a corrupt record " << i;
    }
  }
}

TEST_F(FileStorageTest, Crc32KnownAnswer) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST_F(FileStorageTest, UnopenableDirectoryRefusesOperations) {
  FileStorage s("/dev/null/not-a-dir");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.error().empty());
  s.put("k", to_bytes("v"));  // must not crash
  EXPECT_FALSE(s.get("k").has_value());
  s.append(to_bytes("r"));
  s.sync();
  EXPECT_EQ(s.log_records(), 0u);
  EXPECT_EQ(s.replay([](BytesView) {}), 0u);
}

TEST(MemStorageTest, SameContractAsFileStorage) {
  host::MemStorage s;
  s.put("a", to_bytes("1"));
  s.put("b", to_bytes("2"));
  s.erase("a");
  EXPECT_FALSE(s.get("a").has_value());
  EXPECT_EQ(s.get("b"), to_bytes("2"));
  EXPECT_EQ(s.keys(), std::vector<std::string>{"b"});
  s.append(to_bytes("r1"));
  s.append(to_bytes("r2"));
  s.sync();
  EXPECT_EQ(s.log_records(), 2u);
  std::vector<Bytes> got;
  EXPECT_EQ(s.replay([&](BytesView r) { got.emplace_back(r.begin(), r.end()); }),
            2u);
  EXPECT_EQ(got, (std::vector<Bytes>{to_bytes("r1"), to_bytes("r2")}));
  s.truncate_log();
  EXPECT_EQ(s.log_records(), 0u);
}

}  // namespace
}  // namespace scab::rt
