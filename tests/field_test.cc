#include "secretshare/field.h"

#include <gtest/gtest.h>

namespace scab::secretshare {
namespace {

TEST(Fe, ConstructionReduces) {
  EXPECT_EQ(Fe(kFieldPrime).value(), 0u);
  EXPECT_EQ(Fe(kFieldPrime + 5).value(), 5u);
  EXPECT_EQ(Fe(~uint64_t{0}).value(), (~uint64_t{0}) % kFieldPrime);
}

TEST(Fe, AdditionWrapsAtPrime) {
  const Fe a(kFieldPrime - 1);
  EXPECT_EQ((a + Fe(1)).value(), 0u);
  EXPECT_EQ((a + Fe(2)).value(), 1u);
}

TEST(Fe, SubtractionWraps) {
  EXPECT_EQ((Fe(0) - Fe(1)).value(), kFieldPrime - 1);
  EXPECT_EQ((Fe(5) - Fe(3)).value(), 2u);
}

TEST(Fe, MultiplicationKnownValues) {
  EXPECT_EQ((Fe(0) * Fe(12345)).value(), 0u);
  EXPECT_EQ((Fe(1) * Fe(12345)).value(), 12345u);
  // (p-1)^2 = p^2 - 2p + 1 = 1 mod p
  EXPECT_EQ((Fe(kFieldPrime - 1) * Fe(kFieldPrime - 1)).value(), 1u);
  // 2^60 * 2 = 2^61 = 1 mod p  (since p = 2^61 - 1)
  EXPECT_EQ((Fe(uint64_t{1} << 60) * Fe(2)).value(), 1u);
}

TEST(Fe, PowAndInverse) {
  const Fe a(987654321);
  EXPECT_EQ(a.pow(0).value(), 1u);
  EXPECT_EQ(a.pow(1), a);
  EXPECT_EQ(a.pow(2), a * a);
  EXPECT_EQ((a * a.inv()).value(), 1u);
  EXPECT_THROW(Fe(0).inv(), std::domain_error);
}

TEST(Fe, FermatLittleTheorem) {
  for (uint64_t v : {uint64_t{2}, uint64_t{3}, uint64_t{999999937}, kFieldPrime - 2}) {
    EXPECT_EQ(Fe(v).pow(kFieldPrime - 1).value(), 1u) << v;
  }
}

class FieldPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  crypto::Drbg rng_{to_bytes("field-prop-" + std::to_string(GetParam()))};
};

TEST_P(FieldPropertyTest, RingLaws) {
  for (int i = 0; i < 50; ++i) {
    const Fe a = Fe::random(rng_), b = Fe::random(rng_), c = Fe::random(rng_);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Fe(0));
    EXPECT_EQ((a - b) + b, a);
  }
}

TEST_P(FieldPropertyTest, InverseLaw) {
  for (int i = 0; i < 20; ++i) {
    Fe a = Fe::random(rng_);
    if (a.is_zero()) a = Fe(1);
    EXPECT_EQ(a * a.inv(), Fe(1));
    EXPECT_EQ(a.inv().inv(), a);
  }
}

TEST_P(FieldPropertyTest, RandomIsInRange) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(Fe::random(rng_).value(), kFieldPrime);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FieldPropertyTest, ::testing::Range(0, 4));

TEST(FieldBytes, RoundTripVariousLengths) {
  crypto::Drbg rng(to_bytes("pack"));
  for (std::size_t len : {0u, 1u, 6u, 7u, 8u, 13u, 14u, 100u, 1000u}) {
    const Bytes data = rng.generate(len);
    const auto elems = bytes_to_field(data);
    EXPECT_EQ(elems.size(), (len + 6) / 7);
    EXPECT_EQ(field_to_bytes(elems, len), data) << "len=" << len;
  }
}

TEST(FieldBytes, LengthMismatchThrows) {
  const auto elems = bytes_to_field(Bytes(14, 1));  // 2 chunks
  EXPECT_THROW(field_to_bytes(elems, 7), std::invalid_argument);
  EXPECT_THROW(field_to_bytes(elems, 15), std::invalid_argument);
}

TEST(Poly, EvalMatchesManualHorner) {
  // p(x) = 3 + 2x + x^2 ; p(5) = 3 + 10 + 25 = 38
  const std::vector<Fe> coeffs = {Fe(3), Fe(2), Fe(1)};
  EXPECT_EQ(poly_eval(coeffs, Fe(5)).value(), 38u);
  EXPECT_EQ(poly_eval(coeffs, Fe(0)).value(), 3u);
  EXPECT_EQ(poly_eval({}, Fe(7)).value(), 0u);
}

TEST(Poly, InterpolateRecoversPolynomial) {
  crypto::Drbg rng(to_bytes("interp"));
  std::vector<Fe> coeffs(5);
  for (auto& c : coeffs) c = Fe::random(rng);

  std::vector<Fe> xs, ys;
  for (uint64_t x = 1; x <= 5; ++x) {
    xs.push_back(Fe(x));
    ys.push_back(poly_eval(coeffs, Fe(x)));
  }
  // Interpolation through deg+1 points reproduces the polynomial anywhere.
  for (uint64_t probe : {0ull, 6ull, 12345ull}) {
    EXPECT_EQ(interpolate_at(xs, ys, Fe(probe)), poly_eval(coeffs, Fe(probe)));
  }
}

TEST(Poly, InterpolateRejectsBadInput) {
  std::vector<Fe> xs = {Fe(1)}, ys = {Fe(1), Fe(2)};
  EXPECT_THROW(interpolate_at(xs, ys, Fe(0)), std::invalid_argument);
  EXPECT_THROW(interpolate_at({}, {}, Fe(0)), std::invalid_argument);
}

}  // namespace
}  // namespace scab::secretshare
