#include "crypto/drbg.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace scab::crypto {
namespace {

TEST(Drbg, DeterministicFromSeed) {
  Drbg a(to_bytes("seed"));
  Drbg b(to_bytes("seed"));
  EXPECT_EQ(a.generate(64), b.generate(64));
  EXPECT_EQ(a.generate(17), b.generate(17));
}

TEST(Drbg, DistinctSeedsDistinctStreams) {
  Drbg a(to_bytes("seed-a"));
  Drbg b(to_bytes("seed-b"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, SuccessiveOutputsDiffer) {
  Drbg d(to_bytes("s"));
  EXPECT_NE(d.generate(32), d.generate(32));
}

TEST(Drbg, GenerateOddSizes) {
  Drbg d(to_bytes("s"));
  EXPECT_EQ(d.generate(0).size(), 0u);
  EXPECT_EQ(d.generate(1).size(), 1u);
  EXPECT_EQ(d.generate(33).size(), 33u);
  EXPECT_EQ(d.generate(100).size(), 100u);
}

TEST(Drbg, ReseedChangesStream) {
  Drbg a(to_bytes("s"));
  Drbg b(to_bytes("s"));
  b.reseed(to_bytes("extra"));
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, ForkIsIndependentAndDeterministic) {
  Drbg parent1(to_bytes("s"));
  Drbg parent2(to_bytes("s"));
  Drbg child1 = parent1.fork(to_bytes("node-1"));
  Drbg child2 = parent2.fork(to_bytes("node-1"));
  EXPECT_EQ(child1.generate(32), child2.generate(32));
  // Fork label matters: a different label yields a different stream. (Both
  // parents have consumed the same amount of state.)
  Drbg parent3(to_bytes("s"));
  Drbg child3 = parent3.fork(to_bytes("node-2"));
  Drbg parent4(to_bytes("s"));
  Drbg child4 = parent4.fork(to_bytes("node-1"));
  EXPECT_NE(child3.generate(32), child4.generate(32));
}

TEST(Drbg, UniformStaysBelowBound) {
  Drbg d(to_bytes("u"));
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 33}) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_LT(d.uniform(bound), bound);
    }
  }
}

TEST(Drbg, UniformCoversRange) {
  Drbg d(to_bytes("cover"));
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(d.uniform(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Drbg, UniformIsRoughlyUnbiased) {
  Drbg d(to_bytes("bias"));
  std::map<uint64_t, int> counts;
  const int kDraws = 6000;
  for (int i = 0; i < kDraws; ++i) ++counts[d.uniform(3)];
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, kDraws / 3 - kDraws / 10) << "value " << v;
    EXPECT_LT(c, kDraws / 3 + kDraws / 10) << "value " << v;
  }
}

TEST(Drbg, OsEntropyInstancesDiffer) {
  Drbg a = Drbg::from_os_entropy();
  Drbg b = Drbg::from_os_entropy();
  EXPECT_NE(a.generate(32), b.generate(32));
}

}  // namespace
}  // namespace scab::crypto
