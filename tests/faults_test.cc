// Runtime-agnostic fault injection (DESIGN.md §9): the same
// host::FaultInjector calls drive a partition -> view-change -> heal drill
// on the deterministic simulator and on the real-time threaded runtime.
#include <gtest/gtest.h>

#include <string>

#include "bft/client.h"
#include "bft/replica.h"
#include "causal/harness.h"

namespace scab::causal {
namespace {

class FaultsTest : public ::testing::TestWithParam<RuntimeKind> {};

// Cut the primary's replica links mid-burst: the backups' fairness watchdog
// must force a view change (bft.view_changes_completed advances), the
// in-flight request completes under the new primary, and after heal_all the
// cluster keeps delivering.
TEST_P(FaultsTest, PartitionTriggersViewChangeThenHealDelivers) {
  ClusterOptions opts;
  opts.protocol = Protocol::kPbft;
  opts.runtime = GetParam();
  opts.bft = bft::BftConfig::for_f(1);
  opts.bft.request_timeout = 300 * host::kMillisecond;
  opts.bft.watchdog_period = 100 * host::kMillisecond;
  opts.num_clients = 1;
  opts.seed = 5;
  Cluster cluster(opts);
  cluster.client(0).set_retry_timeout(150 * host::kMillisecond);

  ASSERT_TRUE(cluster.run_one(0, to_bytes("healthy")).has_value());

  // Partition the view-0 primary from every backup (both directions).
  host::FaultInjector& faults = cluster.faults();
  for (uint32_t r = 1; r < cluster.n(); ++r) {
    faults.cut(0, r);
    faults.cut(r, 0);
  }

  // Mid-burst request: it can only complete once the backups elect a new
  // primary, so success here IS the view-change assertion; the counter
  // check below attributes it.
  ASSERT_TRUE(
      cluster.run_one(0, to_bytes("during-partition"), 20 * host::kSecond)
          .has_value());

  uint64_t view_changes = 0;
  for (uint32_t r = 1; r < cluster.n(); ++r) {
    view_changes += cluster.replica_metrics(r)
                        .counter("bft.view_changes_completed")
                        .value();
  }
  EXPECT_GT(view_changes, 0u);

  faults.heal_all();
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(
        cluster.run_one(0, to_bytes("post-heal-" + std::to_string(i)))
            .has_value())
        << i;
  }
  cluster.shutdown();
}

// Directed cut semantics: dropping a single backup's inbound links must NOT
// cost liveness (quorum is 2f+1 of n=3f+1), and healing restores it.
TEST_P(FaultsTest, SingleBackupIsolationKeepsQuorum) {
  ClusterOptions opts;
  opts.protocol = Protocol::kPbft;
  opts.runtime = GetParam();
  opts.num_clients = 1;
  opts.seed = 6;
  Cluster cluster(opts);

  host::FaultInjector& faults = cluster.faults();
  for (uint32_t r = 0; r < cluster.n(); ++r) {
    if (r != 3) faults.cut(r, 3);
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.run_one(0, to_bytes("cut-" + std::to_string(i)))
                    .has_value())
        << i;
  }
  faults.heal_all();
  ASSERT_TRUE(cluster.run_one(0, to_bytes("healed")).has_value());
  cluster.shutdown();
}

INSTANTIATE_TEST_SUITE_P(
    Runtimes, FaultsTest,
    ::testing::Values(RuntimeKind::kSim, RuntimeKind::kThreads),
    [](const ::testing::TestParamInfo<RuntimeKind>& info) {
      return info.param == RuntimeKind::kSim ? std::string("sim")
                                             : std::string("threads");
    });

}  // namespace
}  // namespace scab::causal
