// Seeded chaos harness (DESIGN.md §9): schedule determinism, the safety /
// secrecy / liveness sweep over every protocol on both runtimes (the
// acceptance bar: >= 50 distinct seeded schedules, zero violations), sim
// replay determinism, and a real kill-and-restart in the threaded runtime
// that must rejoin through the checkpoint catch-up fetch.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <thread>

#include "bft/client.h"
#include "causal/harness.h"
#include "chaos/chaos.h"

namespace scab::chaos {
namespace {

using causal::Protocol;
using causal::RuntimeKind;

constexpr Protocol kAllProtocols[] = {Protocol::kPbft, Protocol::kCp0,
                                      Protocol::kCp1, Protocol::kCp2,
                                      Protocol::kCp3};

TEST(ChaosSchedule, DeterministicForSeed) {
  ChaosOptions opt;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const auto a = generate_schedule(seed, opt);
    const auto b = generate_schedule(seed, opt);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_FALSE(a.empty());
  }
  // Distinct seeds should (essentially always) produce distinct schedules.
  EXPECT_NE(generate_schedule(1, opt), generate_schedule(2, opt));
}

TEST(ChaosSchedule, SelfHealingAndAtMostOneCrash) {
  ChaosOptions opt;
  opt.num_faults = 12;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const auto schedule = generate_schedule(seed, opt);
    ASSERT_FALSE(schedule.empty());
    // Terminal event is the heal-all, exactly on the horizon.
    EXPECT_EQ(schedule.back().kind, FaultKind::kHealAll);
    EXPECT_EQ(schedule.back().at, opt.horizon);
    std::optional<host::NodeId> crashed;
    host::Time prev = 0;
    for (const auto& ev : schedule) {
      EXPECT_GE(ev.at, prev) << format_schedule(schedule);
      prev = ev.at;
      if (ev.kind == FaultKind::kCrash) {
        EXPECT_FALSE(crashed.has_value()) << format_schedule(schedule);
        crashed = ev.a;
      } else if (ev.kind == FaultKind::kRestart) {
        ASSERT_TRUE(crashed.has_value());
        EXPECT_EQ(*crashed, ev.a);
        crashed.reset();
      }
    }
    // Every crash was paired with a restart before the horizon closed.
    EXPECT_FALSE(crashed.has_value()) << format_schedule(schedule);
  }
}

// The acceptance sweep: 5 protocols x 8 sim seeds + 5 protocols x 2
// threaded seeds = 50 distinct seeded schedules, all of which must deliver
// every request after the terminal heal with no safety or secrecy
// violation.
TEST(ChaosSweep, SimAllProtocolsZeroViolations) {
  for (Protocol p : kAllProtocols) {
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      ChaosOptions opt;
      opt.protocol = p;
      opt.runtime = RuntimeKind::kSim;
      const ChaosReport r = run_chaos(seed, opt);
      EXPECT_TRUE(r.ok()) << causal::protocol_name(p) << " seed " << seed
                          << ": " << r.violation;
    }
  }
}

TEST(ChaosSweep, ThreadsAllProtocolsZeroViolations) {
  for (Protocol p : kAllProtocols) {
    for (uint64_t seed = 101; seed <= 102; ++seed) {
      ChaosOptions opt;
      opt.protocol = p;
      opt.runtime = RuntimeKind::kThreads;
      // Wall-clock run: compress the fault window so the whole sweep stays
      // inside the CI smoke budget.
      opt.horizon = 300 * host::kMillisecond;
      opt.deadline = 20 * host::kSecond;
      opt.num_faults = 4;
      opt.ops_per_client = 4;
      const ChaosReport r = run_chaos(seed, opt);
      EXPECT_TRUE(r.ok()) << causal::protocol_name(p) << " seed " << seed
                          << ": " << r.violation;
    }
  }
}

// Full-restart schedules: a crash-all / restart-all pair replaces the
// single-replica crash events, every replica carries storage, and the
// verdict additionally asserts at-most-once execution after recovery.
TEST(ChaosSchedule, FullRestartSchedulesAreWellFormed) {
  ChaosOptions opt;
  opt.full_restart = true;
  opt.durability = causal::ClusterOptions::Durability::kMem;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const auto schedule = generate_schedule(seed, opt);
    std::optional<std::size_t> crash_all, restart_all;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      EXPECT_NE(schedule[i].kind, FaultKind::kCrash)
          << format_schedule(schedule);
      if (schedule[i].kind == FaultKind::kCrashAll) crash_all = i;
      if (schedule[i].kind == FaultKind::kRestartAll) restart_all = i;
    }
    ASSERT_TRUE(crash_all.has_value());
    ASSERT_TRUE(restart_all.has_value());
    EXPECT_LT(*crash_all, *restart_all);
    EXPECT_EQ(schedule.back().kind, FaultKind::kHealAll);
    EXPECT_LT(schedule[*restart_all].at, schedule.back().at);
  }
}

TEST(ChaosSweep, SimFullClusterPowerLossAllProtocols) {
  for (Protocol p : kAllProtocols) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      ChaosOptions opt;
      opt.protocol = p;
      opt.runtime = RuntimeKind::kSim;
      opt.full_restart = true;
      opt.durability = causal::ClusterOptions::Durability::kMem;
      const ChaosReport r = run_chaos(seed, opt);
      EXPECT_TRUE(r.ok()) << causal::protocol_name(p) << " seed " << seed
                          << ": " << r.violation;
      // The outage really happened and recovery really ran: the merged
      // metrics carry the crash-all marker and loaded snapshots / replayed
      // WAL records.
      EXPECT_NE(r.metrics_json.find("chaos.faults_injected.crash_all"),
                std::string::npos);
      EXPECT_NE(r.metrics_json.find("bft.recovery"), std::string::npos);
    }
  }
}

// The threaded variant of the power-loss drill (also the TSan target: the
// ctest tsan preset matches ChaosRestart suites).
TEST(ChaosRestart, ThreadsFullClusterPowerLossRecovers) {
  for (Protocol p : {Protocol::kPbft, Protocol::kCp1}) {
    ChaosOptions opt;
    opt.protocol = p;
    opt.runtime = RuntimeKind::kThreads;
    opt.full_restart = true;
    opt.durability = causal::ClusterOptions::Durability::kMem;
    opt.horizon = 300 * host::kMillisecond;
    opt.deadline = 30 * host::kSecond;
    opt.num_faults = 4;
    opt.ops_per_client = 4;
    const ChaosReport r = run_chaos(201, opt);
    EXPECT_TRUE(r.ok()) << causal::protocol_name(p) << ": " << r.violation;
  }
}

// Replaying one chaos seed in the simulator is bit-deterministic: the
// schedule, the per-replica execution logs, and the completion counts all
// come out identical.
TEST(ChaosReplay, SimSameSeedSameRun) {
  ChaosOptions opt;
  opt.protocol = Protocol::kCp2;
  const ChaosReport a = run_chaos(42, opt);
  const ChaosReport b = run_chaos(42, opt);
  EXPECT_EQ(generate_schedule(42, opt), generate_schedule(42, opt));
  EXPECT_EQ(a.completed_ops, b.completed_ops);
  EXPECT_EQ(a.logs, b.logs);
  EXPECT_EQ(a.first_delivery_after_heal, b.first_delivery_after_heal);
  EXPECT_TRUE(a.ok()) << a.violation;
}

// A replica killed and restarted mid-run in the THREADED runtime comes back
// with empty volatile state and rejoins via the checkpoint catch-up fetch:
// the run populates the bft.recovery.catchup_ms histogram on its (reused)
// metrics registry.
TEST(ChaosRestart, ThreadedNodeRejoinsViaCheckpointCatchup) {
  causal::ClusterOptions opts;
  opts.protocol = Protocol::kPbft;
  opts.runtime = RuntimeKind::kThreads;
  opts.bft = bft::BftConfig::for_f(1);
  opts.bft.checkpoint_interval = 4;  // restart recovery within a few ops
  opts.num_clients = 1;
  opts.seed = 11;
  causal::Cluster cluster(opts);

  auto op = [](int i) { return to_bytes("op-" + std::to_string(i)); };
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.run_one(0, op(i)).has_value()) << i;
  }

  cluster.crash_replica(2);
  // n=4 with one replica down leaves exactly the 2f+1 quorum: progress
  // continues, checkpoints advance past the dead replica.
  for (int i = 3; i < 12; ++i) {
    ASSERT_TRUE(cluster.run_one(0, op(i)).has_value()) << i;
  }

  cluster.restart_replica(2);
  EXPECT_EQ(cluster.replica_executed(2), 0u);  // truly empty volatile state
  // Enough post-restart traffic to cross a checkpoint boundary, whose
  // certificate is what tells the reborn replica it is behind.
  for (int i = 12; i < 24; ++i) {
    ASSERT_TRUE(cluster.run_one(0, op(i)).has_value()) << i;
  }

  auto& catchup_ms =
      cluster.replica_metrics(2).histogram("bft.recovery.catchup_ms");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (catchup_ms.count() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.shutdown();

  EXPECT_GE(catchup_ms.count(), 1u) << "restarted replica never caught up";
  EXPECT_GE(cluster.replica_metrics(2)
                .counter("bft.recovery.catchups_completed")
                .value(),
            1u);
  EXPECT_GT(cluster.replica_executed(2), 0u);
}

}  // namespace
}  // namespace scab::chaos
