#include "secretshare/avss.h"

#include <gtest/gtest.h>

namespace scab::secretshare {
namespace {

using crypto::Bignum;
using crypto::Drbg;
using crypto::ModGroup;

const ModGroup& test_group() {
  static const ModGroup grp = [] {
    Drbg rng(to_bytes("avss-test-group"));
    return ModGroup::generate(64, rng);
  }();
  return grp;
}

class AvssTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  uint32_t f() const { return GetParam(); }
  uint32_t t() const { return f() + 1; }
  uint32_t n() const { return 3 * f() + 1; }

  AvssTest() : rng_(to_bytes("avss-test")) {
    secret_ = crypto::random_below(test_group().q(), rng_);
    deal_ = avss_deal(test_group(), secret_, t(), n(), rng_);
  }

  Drbg rng_;
  Bignum secret_;
  AvssDeal deal_;
};

TEST_P(AvssTest, AllSharesVerify) {
  for (const auto& share : deal_.shares) {
    EXPECT_TRUE(avss_verify_share(test_group(), deal_.commitment, share))
        << "server " << share.index;
  }
}

TEST_P(AvssTest, CrossConsistencyHolds) {
  for (uint32_t i = 0; i < n(); ++i) {
    for (uint32_t j = 0; j < n(); ++j) {
      EXPECT_TRUE(avss_cross_check(test_group(), deal_.shares[i], deal_.shares[j]))
          << i << "," << j;
    }
  }
}

TEST_P(AvssTest, ReconstructFromAnyTValidPoints) {
  std::vector<AvssPoint> points;
  // Use the LAST t servers (any subset works).
  for (uint32_t i = n() - t(); i < n(); ++i) {
    points.push_back(avss_reveal_point(test_group(), deal_.shares[i]));
  }
  const auto rec = avss_reconstruct(test_group(), deal_.commitment, points);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(*rec, secret_);
}

TEST_P(AvssTest, CorruptPointsAreFilteredOut) {
  std::vector<AvssPoint> points;
  // f corrupted points arrive first; reconstruction skips them.
  for (uint32_t i = 0; i < f(); ++i) {
    AvssPoint bad = avss_reveal_point(test_group(), deal_.shares[i]);
    bad.value = crypto::mod_add(bad.value, Bignum(1), test_group().q());
    points.push_back(std::move(bad));
  }
  for (uint32_t i = f(); i < n(); ++i) {
    points.push_back(avss_reveal_point(test_group(), deal_.shares[i]));
  }
  const auto rec = avss_reconstruct(test_group(), deal_.commitment, points);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(*rec, secret_);
}

TEST_P(AvssTest, TamperedShareIsRejected) {
  AvssShare bad = deal_.shares[0];
  bad.a_coeffs[0] = crypto::mod_add(bad.a_coeffs[0], Bignum(1), test_group().q());
  EXPECT_FALSE(avss_verify_share(test_group(), deal_.commitment, bad));

  AvssShare bad_b = deal_.shares[1];
  bad_b.b_coeffs.back() =
      crypto::mod_add(bad_b.b_coeffs.back(), Bignum(3), test_group().q());
  EXPECT_FALSE(avss_verify_share(test_group(), deal_.commitment, bad_b));

  AvssShare wrong_index = deal_.shares[0];
  wrong_index.index = 2;  // claims another server's slot
  EXPECT_FALSE(avss_verify_share(test_group(), deal_.commitment, wrong_index));
}

TEST_P(AvssTest, TooFewPointsFail) {
  std::vector<AvssPoint> points;
  for (uint32_t i = 0; i + 1 < t(); ++i) {
    points.push_back(avss_reveal_point(test_group(), deal_.shares[i]));
  }
  EXPECT_FALSE(
      avss_reconstruct(test_group(), deal_.commitment, points).has_value());
  // Duplicated indices do not count twice.
  if (t() > 1) {
    std::vector<AvssPoint> dup(
        t(), avss_reveal_point(test_group(), deal_.shares[0]));
    EXPECT_FALSE(
        avss_reconstruct(test_group(), deal_.commitment, dup).has_value());
  }
}

TEST_P(AvssTest, DifferentSubsetsAgree) {
  std::vector<AvssPoint> first, last;
  for (uint32_t i = 0; i < t(); ++i) {
    first.push_back(avss_reveal_point(test_group(), deal_.shares[i]));
    last.push_back(avss_reveal_point(test_group(), deal_.shares[n() - 1 - i]));
  }
  EXPECT_EQ(avss_reconstruct(test_group(), deal_.commitment, first),
            avss_reconstruct(test_group(), deal_.commitment, last));
}

INSTANTIATE_TEST_SUITE_P(FaultLevels, AvssTest, ::testing::Values(1u, 2u, 3u),
                         [](const auto& info) {
                           return "f" + std::to_string(info.param);
                         });

TEST(Avss, MaliciousDealerInconsistentSliceDetected) {
  // The whole point of AVSS vs ARSS: a dealer that hands server 1 a slice
  // inconsistent with the committed polynomial is caught locally.
  Drbg rng(to_bytes("bad-dealer"));
  const ModGroup& grp = test_group();
  auto deal = avss_deal(grp, Bignum(42), 2, 4, rng);
  // The dealer swaps in a fresh random slice for server 1.
  deal.shares[0].a_coeffs[0] = crypto::random_below(grp.q(), rng);
  EXPECT_FALSE(avss_verify_share(grp, deal.commitment, deal.shares[0]));
  // ... and cross-checks with honest servers expose it too (generically).
  EXPECT_FALSE(avss_cross_check(grp, deal.shares[0], deal.shares[1]));
}

TEST(Avss, RejectsDegenerateInputs) {
  Drbg rng(to_bytes("degenerate"));
  const ModGroup& grp = test_group();
  EXPECT_THROW(avss_deal(grp, Bignum(1), 0, 4, rng), std::invalid_argument);
  EXPECT_THROW(avss_deal(grp, Bignum(1), 5, 4, rng), std::invalid_argument);
  EXPECT_THROW(avss_deal(grp, grp.q(), 2, 4, rng), std::invalid_argument);

  auto deal = avss_deal(grp, Bignum(7), 2, 4, rng);
  AvssShare truncated = deal.shares[0];
  truncated.a_coeffs.pop_back();
  EXPECT_FALSE(avss_verify_share(grp, deal.commitment, truncated));
  AvssPoint zero;
  EXPECT_FALSE(avss_verify_point(grp, deal.commitment, zero));
}

}  // namespace
}  // namespace scab::secretshare
