#include "common/serialize.h"

#include <gtest/gtest.h>

namespace scab {
namespace {

TEST(Serialize, IntegersRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);

  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, BytesAndStrings) {
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");
  w.bytes(Bytes{});

  Reader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serialize, RawBytes) {
  Writer w;
  w.raw(Bytes{9, 8, 7});
  Reader r(w.data());
  EXPECT_EQ(r.raw(3), (Bytes{9, 8, 7}));
  EXPECT_TRUE(r.done());
}

TEST(Serialize, TruncatedIntegerFails) {
  const Bytes data = {1, 2};
  Reader r(data);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
}

TEST(Serialize, OverlongLengthPrefixFails) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes follow
  w.raw(Bytes{1, 2, 3});
  Reader r(w.data());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serialize, FailureIsSticky) {
  const Bytes data = {1};
  Reader r(data);
  r.u64();
  EXPECT_FALSE(r.ok());
  // Later reads keep failing and return zero values even though one byte
  // remains in the buffer.
  EXPECT_EQ(r.u8(), 0);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serialize, DoneRequiresFullConsumption) {
  Writer w;
  w.u16(7);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.done());
}

TEST(Serialize, EmptyReaderIsDone) {
  Reader r(Bytes{});
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace scab
