// Deterministic fuzz sweep over every wire parser: random buffers, sliced
// valid messages, and bit-flipped valid messages must never crash, hang,
// or allocate unboundedly — malformed network input is attacker-controlled.
#include <gtest/gtest.h>

#include "bft/envelope.h"
#include "bft/types.h"
#include "causal/id.h"
#include "crypto/aead.h"
#include "crypto/modgroup.h"
#include "secretshare/arss.h"
#include "threshenc/hybrid.h"

namespace scab {
namespace {

class ParserFuzzTest : public ::testing::TestWithParam<int> {
 protected:
  crypto::Drbg rng_{to_bytes("fuzz-" + std::to_string(GetParam()))};
};

TEST_P(ParserFuzzTest, RandomBuffersDoNotCrashAnyParser) {
  static const crypto::ModGroup group = [] {
    crypto::Drbg grng(to_bytes("fuzz-group"));
    return crypto::ModGroup::generate(48, grng);
  }();

  for (int i = 0; i < 60; ++i) {
    const std::size_t len = rng_.uniform(200);
    const Bytes buf = rng_.generate(len);

    (void)bft::Request::null();
    Reader r(buf);
    (void)bft::Request::read(r);
    (void)bft::PrePrepare::parse(buf);
    (void)bft::PhaseVote::parse(buf);
    (void)bft::Checkpoint::parse(buf);
    (void)bft::ViewChange::parse(buf);
    (void)bft::NewView::parse(buf);
    (void)bft::ClientRequestMsg::parse(buf);
    (void)bft::ReplyMsg::parse(buf);
    (void)bft::untag_bft(buf);
    (void)causal::RequestId::decode(buf);
    (void)secretshare::ShamirShare::parse(buf);
    (void)secretshare::Arss1Share::parse(buf);
    (void)threshenc::Tdh2Ciphertext::parse(group, buf);
    (void)threshenc::Tdh2DecryptionShare::parse(group, buf);
    (void)threshenc::HybridCiphertext::parse(group, buf);
  }
}

TEST_P(ParserFuzzTest, BitFlippedValidMessagesAreRejectedOrParsed) {
  // Build one valid instance of each message, then flip a random bit and
  // parse.  The parse may succeed (payload bytes are opaque) but must
  // never crash; where structural invariants exist they must hold.
  bft::PrePrepare pp;
  pp.view = 3;
  pp.seq = 17;
  for (int i = 0; i < 3; ++i) {
    bft::Request req;
    req.client = 100 + i;
    req.client_seq = i;
    req.payload = rng_.generate(20);
    pp.batch.push_back(std::move(req));
  }
  const Bytes wire = pp.serialize();

  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = wire;
    mutated[rng_.uniform(mutated.size())] ^=
        static_cast<uint8_t>(1u << rng_.uniform(8));
    const auto parsed = bft::PrePrepare::parse(mutated);
    if (parsed) {
      EXPECT_LE(parsed->batch.size(), 100000u);
    }
  }
}

TEST_P(ParserFuzzTest, TruncationsOfValidMessagesAreRejected) {
  crypto::Drbg rng(to_bytes("trunc"));
  auto shares = secretshare::shamir_share(rng.generate(50), 2, 4, rng);
  const Bytes wire = shares[0].serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        secretshare::ShamirShare::parse(BytesView(wire.data(), len)).has_value())
        << "len=" << len;
  }

  bft::ViewChange vc;
  vc.new_view = 2;
  vc.stable_seq = 5;
  bft::PreparedProof proof;
  proof.seq = 6;
  proof.view = 1;
  proof.batch_wire = rng.generate(30);
  vc.prepared.push_back(std::move(proof));
  vc.replica = 1;
  vc.signature = rng.generate(32);
  const Bytes vcw = vc.serialize();
  for (std::size_t len = 0; len < vcw.size(); ++len) {
    EXPECT_FALSE(bft::ViewChange::parse(BytesView(vcw.data(), len)).has_value());
  }
}

TEST_P(ParserFuzzTest, Tdh2WireTruncationsAreRejectedAtEveryLength) {
  // Truncated TDH2 / hybrid wires must be rejected at parse time, before
  // any group operation sees the (attacker-controlled) field values.
  crypto::Drbg grng(to_bytes("tdh2-trunc-group"));
  const crypto::ModGroup group = crypto::ModGroup::generate(48, grng);
  crypto::Drbg rng(to_bytes("tdh2-trunc-" + std::to_string(GetParam())));
  const auto keys = threshenc::tdh2_keygen(group, 2, 4, rng);
  const Bytes label = to_bytes("L");

  const auto ct = threshenc::tdh2_encrypt(
      keys.pk, rng.generate(threshenc::kTdh2MessageSize), label, rng);
  const Bytes ctw = ct.serialize(group);
  for (std::size_t len = 0; len < ctw.size(); ++len) {
    EXPECT_FALSE(threshenc::Tdh2Ciphertext::parse(
                     group, BytesView(ctw.data(), len))
                     .has_value())
        << "ciphertext len=" << len;
  }

  const auto share =
      *threshenc::tdh2_share_decrypt(keys.pk, keys.shares[0], ct, label, rng);
  const Bytes shw = share.serialize(group);
  for (std::size_t len = 0; len < shw.size(); ++len) {
    EXPECT_FALSE(threshenc::Tdh2DecryptionShare::parse(
                     group, BytesView(shw.data(), len))
                     .has_value())
        << "share len=" << len;
  }

  const auto hy =
      threshenc::hybrid_encrypt(keys.pk, rng.generate(100), label, rng);
  const Bytes hyw = hy.serialize(group);
  for (std::size_t len = 0; len < hyw.size(); ++len) {
    EXPECT_FALSE(threshenc::HybridCiphertext::parse(
                     group, BytesView(hyw.data(), len))
                     .has_value())
        << "hybrid len=" << len;
  }
}

TEST_P(ParserFuzzTest, Tdh2OutOfRangeFieldsAreRejectedAtParseTime) {
  // Field values outside their domain (element >= p or zero, exponent >= q,
  // index 0, undersized AEAD box) never survive parsing, so downstream
  // verification code can assume range-reduced inputs.
  crypto::Drbg grng(to_bytes("tdh2-range-group"));
  const crypto::ModGroup group = crypto::ModGroup::generate(48, grng);
  crypto::Drbg rng(to_bytes("tdh2-range-" + std::to_string(GetParam())));
  const auto keys = threshenc::tdh2_keygen(group, 2, 4, rng);
  const Bytes label = to_bytes("L");
  const auto ct = threshenc::tdh2_encrypt(
      keys.pk, rng.generate(threshenc::kTdh2MessageSize), label, rng);
  ASSERT_TRUE(
      threshenc::Tdh2Ciphertext::parse(group, ct.serialize(group)).has_value());

  auto reject_ct = [&](threshenc::Tdh2Ciphertext bad) {
    EXPECT_FALSE(threshenc::Tdh2Ciphertext::parse(group, bad.serialize(group))
                     .has_value());
  };
  {
    auto bad = ct;
    bad.u = crypto::Bignum(0);
    reject_ct(bad);
    bad.u = group.p();  // == p after fixed-width round-trip: out of range
    reject_ct(bad);
  }
  {
    auto bad = ct;
    bad.ubar = crypto::Bignum(0);
    reject_ct(bad);
  }
  {
    auto bad = ct;
    bad.w = crypto::Bignum(0);
    reject_ct(bad);
    bad = ct;
    bad.wbar = group.p();
    reject_ct(bad);
    bad = ct;
    bad.f = group.q();
    reject_ct(bad);
  }
  {
    auto bad = ct;
    bad.c.resize(threshenc::kTdh2MessageSize - 1);
    reject_ct(bad);
  }

  const auto share =
      *threshenc::tdh2_share_decrypt(keys.pk, keys.shares[0], ct, label, rng);
  auto reject_share = [&](threshenc::Tdh2DecryptionShare bad) {
    EXPECT_FALSE(
        threshenc::Tdh2DecryptionShare::parse(group, bad.serialize(group))
            .has_value());
  };
  {
    auto bad = share;
    bad.index = 0;
    reject_share(bad);
  }
  {
    auto bad = share;
    bad.u_i = crypto::Bignum(0);
    reject_share(bad);
    bad.u_i = group.p();
    reject_share(bad);
  }
  {
    auto bad = share;
    bad.u_hat = crypto::Bignum(0);
    reject_share(bad);
    bad = share;
    bad.h_hat = group.p();
    reject_share(bad);
    bad = share;
    bad.f_i = group.q();
    reject_share(bad);
  }

  // A hybrid wire whose AEAD box is shorter than nonce+tag cannot contain
  // a valid box; it is rejected before touching the KEM.
  auto hy = threshenc::hybrid_encrypt(keys.pk, rng.generate(64), label, rng);
  hy.box.resize(crypto::kAeadOverhead - 1);
  EXPECT_FALSE(threshenc::HybridCiphertext::parse(group, hy.serialize(group))
                   .has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace scab
