// Deterministic fuzz sweep over every wire parser: random buffers, sliced
// valid messages, and bit-flipped valid messages must never crash, hang,
// or allocate unboundedly — malformed network input is attacker-controlled.
#include <gtest/gtest.h>

#include "bft/envelope.h"
#include "bft/types.h"
#include "causal/id.h"
#include "crypto/modgroup.h"
#include "secretshare/arss.h"
#include "threshenc/hybrid.h"

namespace scab {
namespace {

class ParserFuzzTest : public ::testing::TestWithParam<int> {
 protected:
  crypto::Drbg rng_{to_bytes("fuzz-" + std::to_string(GetParam()))};
};

TEST_P(ParserFuzzTest, RandomBuffersDoNotCrashAnyParser) {
  static const crypto::ModGroup group = [] {
    crypto::Drbg grng(to_bytes("fuzz-group"));
    return crypto::ModGroup::generate(48, grng);
  }();

  for (int i = 0; i < 60; ++i) {
    const std::size_t len = rng_.uniform(200);
    const Bytes buf = rng_.generate(len);

    (void)bft::Request::null();
    Reader r(buf);
    (void)bft::Request::read(r);
    (void)bft::PrePrepare::parse(buf);
    (void)bft::PhaseVote::parse(buf);
    (void)bft::Checkpoint::parse(buf);
    (void)bft::ViewChange::parse(buf);
    (void)bft::NewView::parse(buf);
    (void)bft::ClientRequestMsg::parse(buf);
    (void)bft::ReplyMsg::parse(buf);
    (void)bft::untag_bft(buf);
    (void)causal::RequestId::decode(buf);
    (void)secretshare::ShamirShare::parse(buf);
    (void)secretshare::Arss1Share::parse(buf);
    (void)threshenc::Tdh2Ciphertext::parse(group, buf);
    (void)threshenc::Tdh2DecryptionShare::parse(group, buf);
    (void)threshenc::HybridCiphertext::parse(group, buf);
  }
}

TEST_P(ParserFuzzTest, BitFlippedValidMessagesAreRejectedOrParsed) {
  // Build one valid instance of each message, then flip a random bit and
  // parse.  The parse may succeed (payload bytes are opaque) but must
  // never crash; where structural invariants exist they must hold.
  bft::PrePrepare pp;
  pp.view = 3;
  pp.seq = 17;
  for (int i = 0; i < 3; ++i) {
    bft::Request req;
    req.client = 100 + i;
    req.client_seq = i;
    req.payload = rng_.generate(20);
    pp.batch.push_back(std::move(req));
  }
  const Bytes wire = pp.serialize();

  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = wire;
    mutated[rng_.uniform(mutated.size())] ^=
        static_cast<uint8_t>(1u << rng_.uniform(8));
    const auto parsed = bft::PrePrepare::parse(mutated);
    if (parsed) {
      EXPECT_LE(parsed->batch.size(), 100000u);
    }
  }
}

TEST_P(ParserFuzzTest, TruncationsOfValidMessagesAreRejected) {
  crypto::Drbg rng(to_bytes("trunc"));
  auto shares = secretshare::shamir_share(rng.generate(50), 2, 4, rng);
  const Bytes wire = shares[0].serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        secretshare::ShamirShare::parse(BytesView(wire.data(), len)).has_value())
        << "len=" << len;
  }

  bft::ViewChange vc;
  vc.new_view = 2;
  vc.stable_seq = 5;
  bft::PreparedProof proof;
  proof.seq = 6;
  proof.view = 1;
  proof.batch_wire = rng.generate(30);
  vc.prepared.push_back(std::move(proof));
  vc.replica = 1;
  vc.signature = rng.generate(32);
  const Bytes vcw = vc.serialize();
  for (std::size_t len = 0; len < vcw.size(); ++len) {
    EXPECT_FALSE(bft::ViewChange::parse(BytesView(vcw.data(), len)).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace scab
