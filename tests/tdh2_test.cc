#include "threshenc/tdh2.h"

#include <gtest/gtest.h>

#include "threshenc/hybrid.h"

namespace scab::threshenc {
namespace {

using crypto::Drbg;
using crypto::ModGroup;

// A single small test group shared across tests (generation is the slow
// part; TDH2 itself is fast at 64 bits).
const ModGroup& test_group() {
  static const ModGroup grp = [] {
    Drbg rng(to_bytes("tdh2-test-group"));
    return ModGroup::generate(64, rng);
  }();
  return grp;
}

class Tdh2Test : public ::testing::TestWithParam<uint32_t> {
 protected:
  uint32_t f() const { return GetParam(); }
  uint32_t n() const { return 3 * f() + 1; }
  uint32_t t() const { return f() + 1; }

  Tdh2Test() : rng_(to_bytes("tdh2-test")) {
    keys_ = tdh2_keygen(test_group(), t(), n(), rng_);
  }

  Bytes fresh_message() { return rng_.generate(kTdh2MessageSize); }

  std::vector<Tdh2DecryptionShare> make_shares(const Tdh2Ciphertext& ct,
                                               BytesView label,
                                               uint32_t count) {
    std::vector<Tdh2DecryptionShare> out;
    for (uint32_t i = 0; i < count; ++i) {
      auto s = tdh2_share_decrypt(keys_.pk, keys_.shares[i], ct, label, rng_);
      EXPECT_TRUE(s.has_value());
      out.push_back(std::move(*s));
    }
    return out;
  }

  Drbg rng_;
  Tdh2KeyMaterial keys_;
};

TEST_P(Tdh2Test, EncryptDecryptRoundTrip) {
  const Bytes msg = fresh_message();
  const Bytes label = to_bytes("client-1:7");
  const auto ct = tdh2_encrypt(keys_.pk, msg, label, rng_);
  EXPECT_TRUE(tdh2_verify_ciphertext(keys_.pk, ct, label));

  const auto shares = make_shares(ct, label, t());
  for (const auto& s : shares) {
    EXPECT_TRUE(tdh2_verify_share(keys_.pk, ct, label, s));
  }
  const auto rec = tdh2_combine(keys_.pk, ct, label, shares);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(*rec, msg);
}

TEST_P(Tdh2Test, AnyThresholdSubsetCombines) {
  const Bytes msg = fresh_message();
  const Bytes label = to_bytes("L");
  const auto ct = tdh2_encrypt(keys_.pk, msg, label, rng_);
  const auto all = make_shares(ct, label, n());

  // Last t shares; and a strided subset.
  std::vector<Tdh2DecryptionShare> tail(all.end() - t(), all.end());
  EXPECT_EQ(tdh2_combine(keys_.pk, ct, label, tail), msg);

  // Strided subset (distinct for all tested n: stride 3 against n = 3f+1).
  std::vector<Tdh2DecryptionShare> strided;
  for (uint32_t i = 0; i < t(); ++i) strided.push_back(all[(i * 3) % n()]);
  EXPECT_EQ(tdh2_combine(keys_.pk, ct, label, strided), msg);
}

TEST_P(Tdh2Test, WrongLabelRejectsCiphertext) {
  // The label is cryptographically bound: verification, share decryption
  // and combination all fail under a different label. This is what makes
  // the scheme "labeled" (ID = client identity + sequence in CP0).
  const auto ct = tdh2_encrypt(keys_.pk, fresh_message(), to_bytes("honest-id"), rng_);
  EXPECT_FALSE(tdh2_verify_ciphertext(keys_.pk, ct, to_bytes("evil-id")));
  EXPECT_FALSE(tdh2_share_decrypt(keys_.pk, keys_.shares[0], ct,
                                  to_bytes("evil-id"), rng_)
                   .has_value());
  const auto shares = make_shares(ct, to_bytes("honest-id"), t());
  EXPECT_FALSE(tdh2_combine(keys_.pk, ct, to_bytes("evil-id"), shares).has_value());
}

TEST_P(Tdh2Test, TamperedCiphertextRejected) {
  const Bytes label = to_bytes("L");
  auto ct = tdh2_encrypt(keys_.pk, fresh_message(), label, rng_);
  ASSERT_TRUE(tdh2_verify_ciphertext(keys_.pk, ct, label));

  {
    auto bad = ct;
    bad.c[0] ^= 1;
    EXPECT_FALSE(tdh2_verify_ciphertext(keys_.pk, bad, label));
  }
  {
    auto bad = ct;
    bad.u = keys_.pk.group.mul(bad.u, keys_.pk.group.g());
    EXPECT_FALSE(tdh2_verify_ciphertext(keys_.pk, bad, label));
  }
  {
    auto bad = ct;
    bad.f = crypto::mod_add(bad.f, crypto::Bignum(1), keys_.pk.group.q());
    EXPECT_FALSE(tdh2_verify_ciphertext(keys_.pk, bad, label));
  }
  {
    auto bad = ct;
    bad.u = crypto::Bignum(0);  // not a group element
    EXPECT_FALSE(tdh2_verify_ciphertext(keys_.pk, bad, label));
  }
}

TEST_P(Tdh2Test, ForgedShareRejected) {
  const Bytes label = to_bytes("L");
  const auto ct = tdh2_encrypt(keys_.pk, fresh_message(), label, rng_);
  auto share = *tdh2_share_decrypt(keys_.pk, keys_.shares[0], ct, label, rng_);
  ASSERT_TRUE(tdh2_verify_share(keys_.pk, ct, label, share));

  {
    auto bad = share;
    bad.u_i = keys_.pk.group.mul(bad.u_i, keys_.pk.group.g());
    EXPECT_FALSE(tdh2_verify_share(keys_.pk, ct, label, bad));
  }
  {
    auto bad = share;
    bad.index = 2;  // claims another server's identity
    EXPECT_FALSE(tdh2_verify_share(keys_.pk, ct, label, bad));
  }
  {
    auto bad = share;
    bad.index = 0;
    EXPECT_FALSE(tdh2_verify_share(keys_.pk, ct, label, bad));
    bad.index = n() + 1;
    EXPECT_FALSE(tdh2_verify_share(keys_.pk, ct, label, bad));
  }
  {
    auto bad = share;
    bad.f_i = crypto::mod_add(bad.f_i, crypto::Bignum(1), keys_.pk.group.q());
    EXPECT_FALSE(tdh2_verify_share(keys_.pk, ct, label, bad));
  }
}

TEST_P(Tdh2Test, CombineNeedsThresholdDistinctShares) {
  const Bytes label = to_bytes("L");
  const Bytes msg = fresh_message();
  const auto ct = tdh2_encrypt(keys_.pk, msg, label, rng_);
  auto shares = make_shares(ct, label, t());

  if (t() > 1) {
    std::vector<Tdh2DecryptionShare> few(shares.begin(), shares.end() - 1);
    EXPECT_FALSE(tdh2_combine(keys_.pk, ct, label, few).has_value());
    // Duplicated indices don't count twice.
    std::vector<Tdh2DecryptionShare> dup(t(), shares[0]);
    EXPECT_FALSE(tdh2_combine(keys_.pk, ct, label, dup).has_value());
  }
}

TEST_P(Tdh2Test, ConsistencyAcrossShareSubsets) {
  // "Consistency of decryptions" (§IV-A): different valid share subsets
  // yield the same plaintext.
  const Bytes label = to_bytes("L");
  const Bytes msg = fresh_message();
  const auto ct = tdh2_encrypt(keys_.pk, msg, label, rng_);
  const auto all = make_shares(ct, label, n());

  const std::vector<Tdh2DecryptionShare> first(all.begin(), all.begin() + t());
  const std::vector<Tdh2DecryptionShare> last(all.end() - t(), all.end());
  EXPECT_EQ(tdh2_combine(keys_.pk, ct, label, first),
            tdh2_combine(keys_.pk, ct, label, last));
}

TEST_P(Tdh2Test, SerializationRoundTrip) {
  const Bytes label = to_bytes("L");
  const auto ct = tdh2_encrypt(keys_.pk, fresh_message(), label, rng_);
  const auto parsed =
      Tdh2Ciphertext::parse(keys_.pk.group, ct.serialize(keys_.pk.group));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(tdh2_verify_ciphertext(keys_.pk, *parsed, label));
  EXPECT_EQ(parsed->c, ct.c);

  const auto share = *tdh2_share_decrypt(keys_.pk, keys_.shares[0], ct, label, rng_);
  const auto pshare = Tdh2DecryptionShare::parse(
      keys_.pk.group, share.serialize(keys_.pk.group));
  ASSERT_TRUE(pshare.has_value());
  EXPECT_TRUE(tdh2_verify_share(keys_.pk, ct, label, *pshare));

  EXPECT_FALSE(Tdh2Ciphertext::parse(keys_.pk.group, Bytes{1, 2}).has_value());
  EXPECT_FALSE(Tdh2DecryptionShare::parse(keys_.pk.group, Bytes{}).has_value());
}

TEST_P(Tdh2Test, PreverifiedShareDecryptAgreesWithChecked) {
  // The preverified entry point (used by CP0's reveal pipeline after the
  // admission-time proof check) must emit shares indistinguishable from the
  // checked path: same verification outcome, interchangeable in combine.
  const Bytes label = to_bytes("L");
  const Bytes msg = fresh_message();
  const auto ct = tdh2_encrypt(keys_.pk, msg, label, rng_);

  std::vector<Tdh2DecryptionShare> pre;
  for (uint32_t i = 0; i < t(); ++i) {
    pre.push_back(tdh2_share_decrypt_preverified(keys_.pk, keys_.shares[i], ct, rng_));
    EXPECT_EQ(pre.back().index, keys_.shares[i].index);
    EXPECT_TRUE(tdh2_verify_share(keys_.pk, ct, label, pre.back()));
  }
  // The share value u_i = u^{x_i} is deterministic; only the proof nonce
  // differs between calls.
  const auto checked =
      *tdh2_share_decrypt(keys_.pk, keys_.shares[0], ct, label, rng_);
  EXPECT_EQ(pre[0].u_i, checked.u_i);

  // Mixed provenance combines to the plaintext.
  std::vector<Tdh2DecryptionShare> mixed;
  mixed.push_back(checked);
  for (uint32_t i = 1; i < t(); ++i) mixed.push_back(pre[i]);
  EXPECT_EQ(tdh2_combine(keys_.pk, ct, label, mixed), msg);
}

TEST_P(Tdh2Test, PreverifiedCombineAgreesWithChecked) {
  const Bytes label = to_bytes("L");
  const Bytes msg = fresh_message();
  const auto ct = tdh2_encrypt(keys_.pk, msg, label, rng_);
  const auto shares = make_shares(ct, label, t());

  // On valid input the two entry points agree (the checked one just pays
  // the ciphertext + share proofs again).
  EXPECT_EQ(tdh2_combine_preverified(keys_.pk, ct, shares), msg);
  EXPECT_EQ(tdh2_combine_preverified(keys_.pk, ct, shares),
            tdh2_combine(keys_.pk, ct, label, shares));

  // Threshold and distinctness are structural properties, still enforced
  // by the preverified path.
  if (t() > 1) {
    std::vector<Tdh2DecryptionShare> few(shares.begin(), shares.end() - 1);
    EXPECT_FALSE(tdh2_combine_preverified(keys_.pk, ct, few).has_value());
    std::vector<Tdh2DecryptionShare> dup(t(), shares[0]);
    EXPECT_FALSE(tdh2_combine_preverified(keys_.pk, ct, dup).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(FaultLevels, Tdh2Test, ::testing::Values(1u, 2u, 3u),
                         [](const auto& info) {
                           return "f" + std::to_string(info.param);
                         });

TEST(Tdh2, KeygenValidatesParams) {
  Drbg rng(to_bytes("kg"));
  EXPECT_THROW(tdh2_keygen(test_group(), 0, 4, rng), std::invalid_argument);
  EXPECT_THROW(tdh2_keygen(test_group(), 5, 4, rng), std::invalid_argument);
}

TEST(Tdh2, EncryptValidatesMessageSize) {
  Drbg rng(to_bytes("sz"));
  auto keys = tdh2_keygen(test_group(), 2, 4, rng);
  EXPECT_THROW(tdh2_encrypt(keys.pk, Bytes(31, 0), to_bytes("L"), rng),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Hybrid encryption

class HybridTest : public ::testing::Test {
 protected:
  HybridTest() : rng_(to_bytes("hybrid-test")) {
    keys_ = tdh2_keygen(test_group(), 2, 4, rng_);
  }

  Bytes recover_seed(const HybridCiphertext& ct, BytesView label) {
    std::vector<Tdh2DecryptionShare> shares;
    for (uint32_t i = 0; i < 2; ++i) {
      shares.push_back(
          *tdh2_share_decrypt(keys_.pk, keys_.shares[i], ct.kem, label, rng_));
    }
    return *tdh2_combine(keys_.pk, ct.kem, label, shares);
  }

  Drbg rng_;
  Tdh2KeyMaterial keys_;
};

TEST_F(HybridTest, LongMessageRoundTrip) {
  const Bytes msg = rng_.generate(4096);  // a 4 kB request, like the 4/0 bench
  const Bytes label = to_bytes("client-9:123");
  const auto ct = hybrid_encrypt(keys_.pk, msg, label, rng_);
  EXPECT_TRUE(hybrid_verify(keys_.pk, ct, label));

  const Bytes seed = recover_seed(ct, label);
  const auto opened = hybrid_open(ct, label, seed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST_F(HybridTest, EmptyMessage) {
  const Bytes label = to_bytes("L");
  const auto ct = hybrid_encrypt(keys_.pk, Bytes{}, label, rng_);
  const auto opened = hybrid_open(ct, label, recover_seed(ct, label));
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST_F(HybridTest, WrongLabelFails) {
  const auto ct = hybrid_encrypt(keys_.pk, to_bytes("m"), to_bytes("L1"), rng_);
  EXPECT_FALSE(hybrid_verify(keys_.pk, ct, to_bytes("L2")));
  const Bytes seed = recover_seed(ct, to_bytes("L1"));
  EXPECT_FALSE(hybrid_open(ct, to_bytes("L2"), seed).has_value());
}

TEST_F(HybridTest, TamperedBoxFails) {
  const Bytes label = to_bytes("L");
  auto ct = hybrid_encrypt(keys_.pk, to_bytes("msg"), label, rng_);
  const Bytes seed = recover_seed(ct, label);
  ct.box[3] ^= 1;
  EXPECT_FALSE(hybrid_open(ct, label, seed).has_value());
}

TEST_F(HybridTest, WrongSeedFails) {
  const Bytes label = to_bytes("L");
  const auto ct = hybrid_encrypt(keys_.pk, to_bytes("msg"), label, rng_);
  EXPECT_FALSE(hybrid_open(ct, label, Bytes(32, 0)).has_value());
  EXPECT_FALSE(hybrid_open(ct, label, Bytes(16, 0)).has_value());
}

TEST_F(HybridTest, SerializeRoundTrip) {
  const Bytes label = to_bytes("L");
  const Bytes msg = rng_.generate(100);
  const auto ct = hybrid_encrypt(keys_.pk, msg, label, rng_);
  const auto parsed =
      HybridCiphertext::parse(keys_.pk.group, ct.serialize(keys_.pk.group));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(hybrid_verify(keys_.pk, *parsed, label));
  const auto opened = hybrid_open(*parsed, label, recover_seed(*parsed, label));
  EXPECT_EQ(opened, msg);
  EXPECT_FALSE(HybridCiphertext::parse(keys_.pk.group, Bytes{9}).has_value());
}

}  // namespace
}  // namespace scab::threshenc
