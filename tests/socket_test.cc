// rt::SocketTransport hardening regressions:
//
//  * classify_accept_error — the accept-loop retry policy as a pure
//    function (the errnos themselves are hard to force deterministically);
//  * a connection storm of aborted handshakes (RST before accept) must
//    not kill the accept loop: later well-behaved peers still connect —
//    the old loop returned on ANY accept(2) failure and silently
//    partitioned the node forever;
//  * shutdown with a still-alive remote peer: stop() must unblock reader
//    threads parked in recv on accepted connections (a hang here was
//    exactly how the first multi-process scab-client run died);
//  * loopback round-trip latency stays in the no-Nagle regime: with
//    TCP_NODELAY on both accepted and outbound sockets the median RTT is
//    far below the ~40 ms delayed-ACK interaction the option avoids.
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "rt/transport.h"

namespace scab::rt {
namespace {

using AcceptAction = SocketTransport::AcceptAction;

TEST(AcceptErrorPolicy, TransientErrorsRetryImmediately) {
  EXPECT_EQ(SocketTransport::classify_accept_error(EINTR),
            AcceptAction::kRetry);
  EXPECT_EQ(SocketTransport::classify_accept_error(ECONNABORTED),
            AcceptAction::kRetry);
#ifdef EPROTO
  EXPECT_EQ(SocketTransport::classify_accept_error(EPROTO),
            AcceptAction::kRetry);
#endif
}

TEST(AcceptErrorPolicy, ResourceExhaustionAndUnknownErrorsSleepFirst) {
  EXPECT_EQ(SocketTransport::classify_accept_error(EMFILE),
            AcceptAction::kRetrySleep);
  EXPECT_EQ(SocketTransport::classify_accept_error(ENFILE),
            AcceptAction::kRetrySleep);
  EXPECT_EQ(SocketTransport::classify_accept_error(ENOBUFS),
            AcceptAction::kRetrySleep);
  EXPECT_EQ(SocketTransport::classify_accept_error(ENOMEM),
            AcceptAction::kRetrySleep);
  // Anything unexpected must also retry (after the sleep) — only stop()
  // may end the accept loop.
  EXPECT_EQ(SocketTransport::classify_accept_error(EINVAL),
            AcceptAction::kRetrySleep);
}

// Connects to `port` and immediately resets (SO_LINGER{1,0} -> RST on
// close).  Races accept(2) on purpose: connections reset while queued in
// the backlog surface as ECONNABORTED from accept on Linux.
void connect_and_reset(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    linger lg{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  }
  ::close(fd);
}

TEST(SocketTransportStorm, AcceptLoopSurvivesAbortedHandshakes) {
  SocketTransport server(0);
  if (!server.ok()) {
    GTEST_SKIP() << "cannot bind loopback sockets in this environment";
  }
  std::mutex mu;
  std::condition_variable cv;
  Bytes got;
  server.set_deliver([&](host::NodeId, host::NodeId, Bytes msg) {
    std::lock_guard<std::mutex> lk(mu);
    got = std::move(msg);
    cv.notify_one();
  });
  server.start();

  // Storm of handshakes reset before (or just after) accept picks them up.
  for (int i = 0; i < 64; ++i) connect_and_reset(server.port());

  // A well-behaved peer connecting afterwards must still get through.
  SocketTransport client(0);
  ASSERT_TRUE(client.ok());
  client.add_peer(1, {"127.0.0.1", server.port()});
  client.start();
  const Bytes payload = to_bytes("still-accepting");
  client.send(7, 1, payload);

  std::unique_lock<std::mutex> lk(mu);
  const bool delivered = cv.wait_for(lk, std::chrono::seconds(5),
                                     [&] { return !got.empty(); });
  ASSERT_TRUE(delivered)
      << "accept loop died during the storm; accept_errors = "
      << server.accept_errors();
  EXPECT_EQ(got, payload);
}

// stop() with a LIVE remote peer: the server's reader threads sit in recv
// on accepted connections the client keeps open.  Before inbound fds were
// tracked and shutdown(2), this join hung forever.
TEST(SocketTransportStop, UnblocksReadersWithLivePeer) {
  SocketTransport server(0);
  SocketTransport client(0);
  if (!server.ok() || !client.ok()) {
    GTEST_SKIP() << "cannot bind loopback sockets in this environment";
  }
  std::mutex mu;
  std::condition_variable cv;
  int received = 0;
  server.set_deliver([&](host::NodeId, host::NodeId, Bytes) {
    std::lock_guard<std::mutex> lk(mu);
    ++received;
    cv.notify_one();
  });
  server.start();
  client.start();
  client.add_peer(1, {"127.0.0.1", server.port()});
  client.send(7, 1, to_bytes("hold the connection open"));
  {
    std::unique_lock<std::mutex> lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(5),
                            [&] { return received == 1; }));
  }
  // The client still holds its side open; stop() must return regardless.
  // (A regression hangs the test into its global timeout.)
  server.stop();
  client.stop();
}

TEST(SocketTransportLatency, LoopbackRoundTripStaysSubDelayedAck) {
  SocketTransport a(0);
  SocketTransport b(0);
  if (!a.ok() || !b.ok()) {
    GTEST_SKIP() << "cannot bind loopback sockets in this environment";
  }
  a.add_peer(2, {"127.0.0.1", b.port()});
  b.add_peer(1, {"127.0.0.1", a.port()});
  std::mutex mu;
  std::condition_variable cv;
  int pongs = 0;
  b.set_deliver([&](host::NodeId from, host::NodeId to, Bytes msg) {
    b.send(to, from, std::move(msg));  // echo
  });
  a.set_deliver([&](host::NodeId, host::NodeId, Bytes) {
    std::lock_guard<std::mutex> lk(mu);
    ++pongs;
    cv.notify_one();
  });
  a.start();
  b.start();

  const Bytes ping(64, 0x42);
  std::vector<double> rtt_ms;
  for (int i = 0; i < 50; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    a.send(1, 2, ping);
    std::unique_lock<std::mutex> lk(mu);
    ASSERT_TRUE(cv.wait_for(lk, std::chrono::seconds(5),
                            [&] { return pongs == i + 1; }))
        << "lost ping " << i;
    rtt_ms.push_back(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count());
  }
  std::sort(rtt_ms.begin(), rtt_ms.end());
  const double median = rtt_ms[rtt_ms.size() / 2];
  // Delayed-ACK + Nagle interaction steps RTT to ~40 ms; with TCP_NODELAY
  // on both directions loopback stays well under a generous CI bound.
  EXPECT_LT(median, 20.0) << "median RTT suggests Nagle is back";
}

// Raises the soft RLIMIT_NOFILE toward `want` (capped by the hard limit);
// returns the resulting soft limit, or 0 if it cannot even be read.
std::size_t raise_nofile(rlim_t want) {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return 0;
  if (rl.rlim_cur < want) {
    rlimit raised = rl;
    raised.rlim_cur = std::min<rlim_t>(want, rl.rlim_max);
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) rl = raised;
  }
  return static_cast<std::size_t>(rl.rlim_cur);
}

// Blocking loopback connect; returns the fd or -1.
int connect_loopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// The event-loop claim, tested at the scale thread-per-connection cannot
// reach: ~1000 concurrent inbound connections served by ONE io thread,
// every connection's frame delivered while all of them stay open.  The
// connection count shrinks to the process's fd budget when the rlimit is
// tight (this binary holds both ends of every connection).
TEST(EpollSoak, ThousandConnectionsOnOneIoThread) {
  const std::size_t nofile = raise_nofile(4096);
  // Both ends live here: 2 fds per connection, plus generous headroom for
  // the transport's own fds, gtest, and stdio.
  const std::size_t budget = nofile > 256 ? (nofile - 256) / 2 : 0;
  const std::size_t conns = std::min<std::size_t>(1000, budget);
  if (conns < 64) {
    GTEST_SKIP() << "fd limit " << nofile << " leaves no room for a soak";
  }

  SocketTransport server(0, {}, 0, "127.0.0.1", /*io_threads=*/1);
  if (!server.ok()) {
    GTEST_SKIP() << "cannot bind loopback sockets in this environment";
  }
  ASSERT_EQ(server.io_threads(), 1u);
  std::atomic<uint64_t> delivered{0};
  std::atomic<uint64_t> payload_sum{0};
  server.set_deliver([&](host::NodeId from, host::NodeId to, Bytes msg) {
    if (to == 1 && msg.size() == 16) {
      payload_sum.fetch_add(from, std::memory_order_relaxed);
      delivered.fetch_add(1, std::memory_order_relaxed);
    }
  });
  server.start();

  // Phase 1: open every connection before sending anything, so the epoll
  // loop really multiplexes `conns` live fds at once.
  std::vector<int> fds;
  fds.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    const int fd = connect_loopback(server.port());
    if (fd < 0) break;  // fd budget mis-estimated: soak what we got
    fds.push_back(fd);
  }
  ASSERT_GE(fds.size(), 64u) << "could not open enough connections";

  // Phase 2: one frame per connection (u32 len | u32 from | u32 to | 16B).
  uint64_t expect_sum = 0;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    const uint32_t from = static_cast<uint32_t>(100 + i);
    expect_sum += from;
    uint8_t frame[12 + 16] = {};
    const uint32_t len = 16, to = 1;
    std::memcpy(frame, &len, 4);
    std::memcpy(frame + 4, &from, 4);
    std::memcpy(frame + 8, &to, 4);
    std::memset(frame + 12, 0x5d, 16);
    ASSERT_EQ(::send(fds[i], frame, sizeof(frame), 0),
              static_cast<ssize_t>(sizeof(frame)));
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (delivered.load(std::memory_order_relaxed) < fds.size() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(delivered.load(), fds.size())
      << "epoll loop lost frames; accept_errors = " << server.accept_errors();
  EXPECT_EQ(payload_sum.load(), expect_sum) << "from-ids corrupted in flight";

  for (int fd : fds) ::close(fd);
  server.stop();  // must unwind ~1000 registered conns promptly
}

// Same soak sharded over several io threads: accepted connections are
// spread round-robin, and every loop's share must deliver.
TEST(EpollSoak, ConnectionsSpreadAcrossIoThreads) {
  const std::size_t nofile = raise_nofile(2048);
  const std::size_t budget = nofile > 256 ? (nofile - 256) / 2 : 0;
  const std::size_t conns = std::min<std::size_t>(256, budget);
  if (conns < 32) {
    GTEST_SKIP() << "fd limit " << nofile << " leaves no room for a soak";
  }
  SocketTransport server(0, {}, 0, "127.0.0.1", /*io_threads=*/4);
  if (!server.ok()) {
    GTEST_SKIP() << "cannot bind loopback sockets in this environment";
  }
  ASSERT_EQ(server.io_threads(), 4u);
  std::atomic<uint64_t> delivered{0};
  server.set_deliver([&](host::NodeId, host::NodeId, Bytes) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  });
  server.start();

  std::vector<int> fds;
  for (std::size_t i = 0; i < conns; ++i) {
    const int fd = connect_loopback(server.port());
    if (fd < 0) break;
    fds.push_back(fd);
    const uint32_t len = 4, from = static_cast<uint32_t>(i), to = 1;
    uint8_t frame[16] = {};
    std::memcpy(frame, &len, 4);
    std::memcpy(frame + 4, &from, 4);
    std::memcpy(frame + 8, &to, 4);
    ASSERT_EQ(::send(fd, frame, sizeof(frame), 0),
              static_cast<ssize_t>(sizeof(frame)));
  }
  ASSERT_GE(fds.size(), 32u);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (delivered.load() < fds.size() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(delivered.load(), fds.size());
  for (int fd : fds) ::close(fd);
  server.stop();
}

}  // namespace
}  // namespace scab::rt
