// Client retransmission backoff: against an unresponsive cluster the k-th
// retry of one operation waits base << min(k, 6) (plus jitter), so a dead
// primary costs O(log) retransmissions over any window instead of a
// fixed-rate storm.  Regression for the storm: at a 10 ms base over 10
// virtual seconds, fixed-rate retries would fire ~1000 times; capped
// exponential backoff fires ~20.
#include <gtest/gtest.h>

#include "apps/kvstore.h"
#include "bft/client.h"
#include "bft/replica.h"
#include "causal/harness.h"

namespace scab::causal {
namespace {

TEST(Backoff, CrashedPrimaryCostsLogarithmicRetries) {
  ClusterOptions opts;
  opts.protocol = Protocol::kPbft;
  opts.bft = bft::BftConfig::for_f(1);
  // Disable the view-change path: this test wants the client to keep
  // retrying against a dead primary, not to be rescued by a new one.
  opts.bft.request_timeout = 3600 * host::kSecond;
  opts.num_clients = 1;
  opts.seed = 3;
  Cluster cluster(opts);

  // Crash ALL replicas: no progress, no replies, every retry is futile.
  for (uint32_t r = 0; r < cluster.n(); ++r) cluster.net().faults().crash(r);

  bft::Client& client = cluster.client(0);
  client.set_retry_timeout(10 * host::kMillisecond);
  client.submit(apps::KvStore::put("k", to_bytes("v")));

  cluster.sim().run_until(cluster.sim().now() + 10 * host::kSecond);

  EXPECT_EQ(client.completed_ops(), 0u);
  const uint64_t retries =
      cluster.client_metrics(0).counter_value("client.retries");
  // Delay sequence: 10, 20, 40, ..., 640 ms (cap), then 640 ms + jitter per
  // retry; 10 s admits roughly 13 capped retries after the 7 doubling steps.
  EXPECT_GE(retries, 5u);
  EXPECT_LE(retries, 60u) << "fixed-rate retry storm is back (~1000 expected "
                             "at 10 ms base over 10 s)";
}

// The backoff resets per operation: a healthy follow-up run must not
// inherit the previous operation's widened interval.
TEST(Backoff, ResetsBetweenOperations) {
  ClusterOptions opts;
  opts.protocol = Protocol::kPbft;
  opts.bft = bft::BftConfig::for_f(1);
  opts.num_clients = 1;
  opts.seed = 5;
  Cluster cluster(opts);

  auto first = cluster.run_one(0, apps::KvStore::put("a", to_bytes("1")));
  EXPECT_TRUE(first.has_value());
  auto second = cluster.run_one(0, apps::KvStore::put("b", to_bytes("2")));
  EXPECT_TRUE(second.has_value());
  // Healthy cluster: no retransmissions at all.
  EXPECT_EQ(cluster.client_metrics(0).counter_value("client.retries"), 0u);
}

}  // namespace
}  // namespace scab::causal
