// Unit tests for the replicated services (executed here directly, without
// the BFT stack — determinism of Service::execute is what the protocols
// rely on).
#include <gtest/gtest.h>

#include "apps/dns.h"
#include "apps/kvstore.h"
#include "apps/trading.h"

namespace scab::apps {
namespace {

TEST(KvStore, PutGetDelete) {
  KvStore kv;
  EXPECT_EQ(kv.execute(1, KvStore::put("a", to_bytes("1"))), to_bytes("ok"));
  EXPECT_EQ(kv.execute(2, KvStore::get("a")), to_bytes("1"));
  EXPECT_EQ(kv.execute(1, KvStore::put("a", to_bytes("2"))), to_bytes("ok"));
  EXPECT_EQ(kv.execute(2, KvStore::get("a")), to_bytes("2"));
  EXPECT_EQ(kv.execute(1, KvStore::del("a")), to_bytes("ok"));
  EXPECT_EQ(kv.execute(1, KvStore::del("a")), to_bytes("absent"));
  EXPECT_TRUE(kv.execute(2, KvStore::get("a")).empty());
}

TEST(KvStore, MalformedOpsDoNotCorruptState) {
  KvStore kv;
  kv.execute(1, KvStore::put("k", to_bytes("v")));
  EXPECT_EQ(kv.execute(1, Bytes{}), to_bytes("err:unknown-op"));
  EXPECT_EQ(kv.execute(1, Bytes{0x5a, 0x01}), to_bytes("err:unknown-op"));
  Bytes trailing = KvStore::get("k");
  trailing.push_back(0x00);
  EXPECT_EQ(kv.execute(1, trailing), to_bytes("err:malformed"));
  EXPECT_EQ(kv.execute(1, KvStore::get("k")), to_bytes("v"));
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStore, DeterministicAcrossInstances) {
  KvStore a, b;
  const std::vector<Bytes> ops = {
      KvStore::put("x", to_bytes("1")), KvStore::put("y", to_bytes("2")),
      KvStore::del("x"), KvStore::get("y"), KvStore::put("x", to_bytes("3"))};
  for (const auto& op : ops) {
    EXPECT_EQ(a.execute(7, op), b.execute(7, op));
  }
  EXPECT_EQ(a.size(), b.size());
}

TEST(Trading, BuyMovesPriceAgainstLaterBuyers) {
  TradingService t;
  // This asymmetry is the entire front-running incentive.
  const Bytes first = t.execute(1, TradingService::buy("ACME", 100));
  const Bytes second = t.execute(2, TradingService::buy("ACME", 100));
  EXPECT_EQ(first, to_bytes("filled:100@10000"));
  EXPECT_EQ(second, to_bytes("filled:100@10500"));
  EXPECT_EQ(t.position(1, "ACME"), 100);
  EXPECT_EQ(t.position(2, "ACME"), 100);
}

TEST(Trading, SellLowersPriceWithFloor) {
  TradingService t;
  t.execute(1, TradingService::sell("PENNY", 100));
  EXPECT_EQ(t.price_cents("PENNY"),
            TradingService::kInitialPriceCents - 100 * TradingService::kImpactPerShare);
  // Selling an enormous quantity floors at 1, never underflows.
  t.execute(1, TradingService::sell("PENNY", 1'000'000));
  EXPECT_EQ(t.price_cents("PENNY"), 1u);
  EXPECT_EQ(t.position(1, "PENNY"), -1'000'100);
}

TEST(Trading, QuoteAndIsolatedSymbols) {
  TradingService t;
  t.execute(1, TradingService::buy("AAA", 10));
  EXPECT_EQ(t.execute(2, TradingService::quote("AAA")), to_bytes("10050"));
  EXPECT_EQ(t.execute(2, TradingService::quote("BBB")), to_bytes("10000"));
}

TEST(Trading, RejectsMalformedOrders) {
  TradingService t;
  EXPECT_EQ(t.execute(1, TradingService::buy("X", 0)), to_bytes("err:malformed"));
  EXPECT_EQ(t.execute(1, Bytes{'B'}), to_bytes("err:malformed"));
  EXPECT_EQ(t.execute(1, Bytes{'Z', 0, 0, 0, 0}), to_bytes("err:unknown-op"));
}

TEST(Dns, FirstComeFirstServed) {
  DnsRegistry d;
  EXPECT_EQ(d.execute(100, DnsRegistry::register_name("a.example")),
            to_bytes("registered"));
  EXPECT_EQ(d.execute(101, DnsRegistry::register_name("a.example")),
            to_bytes("taken:100"));
  EXPECT_EQ(d.owner("a.example"), 100u);
  // Re-registration by the SAME owner is also "taken" (idempotence is the
  // BFT layer's dedupe job, not the service's).
  EXPECT_EQ(d.execute(100, DnsRegistry::register_name("a.example")),
            to_bytes("taken:100"));
}

TEST(Dns, Resolve) {
  DnsRegistry d;
  EXPECT_EQ(d.execute(1, DnsRegistry::resolve("nope.example")),
            to_bytes("nxdomain"));
  d.execute(42, DnsRegistry::register_name("x.example"));
  EXPECT_EQ(d.execute(1, DnsRegistry::resolve("x.example")), to_bytes("42"));
}

TEST(Dns, RejectsEmptyAndMalformedNames) {
  DnsRegistry d;
  EXPECT_EQ(d.execute(1, DnsRegistry::register_name("")), to_bytes("err:malformed"));
  EXPECT_EQ(d.execute(1, Bytes{'R'}), to_bytes("err:malformed"));
  EXPECT_EQ(d.registered_count(), 0u);
}

}  // namespace
}  // namespace scab::apps
