// Cross-runtime equivalence: the same cluster assembled on the
// deterministic simulator (RuntimeKind::kSim) and on the real-time threaded
// runtime (RuntimeKind::kThreads) must deliver the same request set with
// identical plaintexts — the host abstraction (DESIGN.md §8) is supposed to
// be invisible to the protocol stack.  Plus a threaded soak (run under
// `cmake --preset tsan` in CI) and an rt::SocketTransport loopback smoke.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/kvstore.h"
#include "bft/client.h"
#include "bft/replica.h"
#include "causal/harness.h"
#include "rt/transport.h"

namespace scab::causal {
namespace {

constexpr int kRounds = 4;

// Scripted KV workload: client 0 PUTs, client 1 GETs the same key back.
// Returns every client-observed result in order; "<timeout>" marks an
// operation that missed its deadline, so the equivalence comparison fails
// loudly instead of comparing truncated runs.
std::vector<Bytes> run_workload(RuntimeKind runtime, Protocol protocol) {
  ClusterOptions opts;
  opts.protocol = protocol;
  opts.runtime = runtime;
  opts.bft = bft::BftConfig::for_f(1);
  opts.num_clients = 2;
  opts.seed = 7;
  opts.service_factory = [] { return std::make_unique<apps::KvStore>(); };
  Cluster cluster(opts);

  std::vector<Bytes> results;
  for (int i = 0; i < kRounds; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::string val = "value-" + std::to_string(i);
    auto put = cluster.run_one(0, apps::KvStore::put(key, to_bytes(val)));
    results.push_back(put.value_or(to_bytes("<timeout>")));
    auto get = cluster.run_one(1, apps::KvStore::get(key));
    results.push_back(get.value_or(to_bytes("<timeout>")));
  }
  // The client completes on an f+1 quorum, so the slowest replica may still
  // be executing the tail; let every replica catch up before quiescing.
  // executed_requests() is atomic — safe to poll while workers run.
  auto converged = [&] {
    const uint64_t e0 = cluster.replica_executed(0);
    if (e0 == 0) return false;
    for (uint32_t r = 1; r < cluster.n(); ++r) {
      if (cluster.replica_executed(r) != e0) return false;
    }
    return true;
  };
  if (runtime == RuntimeKind::kSim) {
    const host::Time stop_at = cluster.sim().now() + 10 * host::kSecond;
    cluster.sim().run_while(
        [&] { return converged() || cluster.sim().now() >= stop_at; });
  } else {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!converged() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  cluster.shutdown();
  // Post-shutdown the workers are joined, so replica state is stable: every
  // correct replica must hold the full KV state (same request set applied).
  for (uint32_t r = 0; r < cluster.n(); ++r) {
    EXPECT_EQ(dynamic_cast<apps::KvStore&>(cluster.service(r)).size(),
              static_cast<std::size_t>(kRounds))
        << protocol_name(protocol) << " replica " << r << " runtime "
        << (runtime == RuntimeKind::kSim ? "sim" : "threads");
  }
  return results;
}

class RuntimeEquivalence : public ::testing::TestWithParam<Protocol> {};

TEST_P(RuntimeEquivalence, SimAndThreadsDeliverTheSamePlaintexts) {
  const std::vector<Bytes> sim = run_workload(RuntimeKind::kSim, GetParam());
  const std::vector<Bytes> threads =
      run_workload(RuntimeKind::kThreads, GetParam());
  ASSERT_EQ(sim.size(), threads.size());
  for (std::size_t i = 0; i < sim.size(); ++i) {
    EXPECT_EQ(sim[i], threads[i]) << "result #" << i;
  }
  // The GET results carry the actual plaintext values, so a causal protocol
  // that garbled a reveal on either runtime fails here, not just on counts.
  for (int i = 0; i < kRounds; ++i) {
    EXPECT_EQ(threads[2 * i + 1], to_bytes("value-" + std::to_string(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, RuntimeEquivalence,
                         ::testing::Values(Protocol::kPbft, Protocol::kCp0,
                                           Protocol::kCp1, Protocol::kCp2,
                                           Protocol::kCp3),
                         [](const auto& info) {
                           return std::string(protocol_name(info.param));
                         });

// 4 replicas x 8 clients hammering CP1 concurrently on the threaded
// runtime.  Run under TSan (cmake --preset tsan) this validates the whole
// concurrency story: per-node workers, ChannelTransport, atomic metrics,
// the mutexed tracer, and the client stats accessors.
TEST(RuntimeSoak, ThreadedCp1ManyClients) {
  constexpr uint32_t kClients = 8;
  constexpr uint64_t kOpsPerClient = 5;

  ClusterOptions opts;
  opts.protocol = Protocol::kCp1;
  opts.runtime = RuntimeKind::kThreads;
  opts.bft = bft::BftConfig::for_f(1);
  opts.num_clients = kClients;
  opts.seed = 11;
  Cluster cluster(opts);

  // Kick every client's closed loop from its own worker; the controlling
  // thread only polls the atomic completion counters.
  for (uint32_t c = 0; c < kClients; ++c) {
    bft::Client& client = cluster.client(c);
    cluster.host().post(client.id(), [&client, c] {
      client.run_closed_loop(
          [c](uint64_t i) {
            return apps::KvStore::put(std::to_string(c) + "/" +
                                          std::to_string(i),
                                      to_bytes("v" + std::to_string(i)));
          },
          kOpsPerClient);
    });
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  auto all_done = [&] {
    for (uint32_t c = 0; c < kClients; ++c) {
      if (cluster.client(c).completed_ops() < kOpsPerClient) return false;
    }
    return true;
  };
  while (!all_done() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(all_done()) << "soak did not finish within 30s";

  // Exercise the cross-thread introspection paths while workers are live.
  (void)cluster.merged_metrics().to_json();
  (void)cluster.tracer().breakdown();

  cluster.shutdown();
  for (uint32_t c = 0; c < kClients; ++c) {
    EXPECT_GE(cluster.client(c).completed_ops(), kOpsPerClient);
  }
}

// rt::SocketTransport loopback: two transports on 127.0.0.1 ephemeral
// ports, each the peer of the other; frames must arrive intact and carry
// the right (from, to).  Skipped where the sandbox forbids sockets.
TEST(SocketTransportSmoke, LoopbackRoundTrip) {
  rt::SocketTransport a(0);
  rt::SocketTransport b(0);
  if (!a.ok() || !b.ok()) {
    GTEST_SKIP() << "cannot bind loopback sockets in this environment";
  }
  a.add_peer(2, {"127.0.0.1", b.port()});
  b.add_peer(1, {"127.0.0.1", a.port()});

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::tuple<host::NodeId, host::NodeId, Bytes>> got_b;
  b.set_deliver([&](host::NodeId from, host::NodeId to, Bytes msg) {
    std::lock_guard<std::mutex> lk(mu);
    got_b.emplace_back(from, to, std::move(msg));
    cv.notify_one();
  });
  Bytes echoed;
  a.set_deliver([&](host::NodeId, host::NodeId, Bytes msg) {
    std::lock_guard<std::mutex> lk(mu);
    echoed = std::move(msg);
    cv.notify_one();
  });
  a.start();
  b.start();

  const Bytes payload = to_bytes("over-the-wire");
  a.send(1, 2, payload);                 // a -> b over TCP
  a.send(1, 7, to_bytes("local"));       // 7 not in peer table: loops back

  std::unique_lock<std::mutex> lk(mu);
  const bool ok = cv.wait_for(lk, std::chrono::seconds(5), [&] {
    return got_b.size() == 1 && !echoed.empty();
  });
  ASSERT_TRUE(ok) << "frames did not arrive within 5s";
  EXPECT_EQ(std::get<0>(got_b[0]), 1u);
  EXPECT_EQ(std::get<1>(got_b[0]), 2u);
  EXPECT_EQ(std::get<2>(got_b[0]), payload);
  EXPECT_EQ(echoed, to_bytes("local"));

  a.stop();
  b.stop();
}

}  // namespace
}  // namespace scab::causal
