// Tests for the two asynchronous robust secret-sharing constructions,
// including full corruption-pattern sweeps: up to f Byzantine share holders
// submit adversarially modified shares in every arrival order.
#include "secretshare/arss.h"

#include <gtest/gtest.h>

#include <numeric>

namespace scab::secretshare {
namespace {

using crypto::Commitment;
using crypto::Drbg;

TEST(Combinations, EnumeratesAllSubsets) {
  int count = 0;
  for_each_combination(5, 3, [&](std::span<const std::size_t> idx) {
    EXPECT_EQ(idx.size(), 3u);
    EXPECT_TRUE(idx[0] < idx[1] && idx[1] < idx[2]);
    EXPECT_LT(idx[2], 5u);
    ++count;
    return false;
  });
  EXPECT_EQ(count, 10);  // C(5,3)
}

TEST(Combinations, EarlyStop) {
  int count = 0;
  const bool found = for_each_combination(6, 2, [&](auto) {
    ++count;
    return count == 3;
  });
  EXPECT_TRUE(found);
  EXPECT_EQ(count, 3);
}

TEST(Combinations, EdgeCases) {
  int count = 0;
  EXPECT_FALSE(for_each_combination(3, 5, [&](auto) {
    ++count;
    return false;
  }));
  EXPECT_EQ(count, 0);

  EXPECT_TRUE(for_each_combination(3, 0, [&](std::span<const std::size_t> idx) {
    EXPECT_TRUE(idx.empty());
    return true;
  }));

  count = 0;
  for_each_combination(4, 4, [&](auto) {
    ++count;
    return false;
  });
  EXPECT_EQ(count, 1);
}

// ---------------------------------------------------------------------------

class ArssTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  uint32_t f() const { return GetParam(); }
  uint32_t n() const { return 3 * f() + 1; }

  Drbg rng_{to_bytes("arss-test")};
  Commitment cs_{Commitment::cgen(rng_)};
  Bytes secret_ = to_bytes("the causal request payload #42");
};

// --- ARSS1 ---

TEST_P(ArssTest, Arss1HonestRecovery) {
  const auto shares = arss1_share(secret_, f() + 1, n(), cs_, rng_);
  ASSERT_EQ(shares.size(), n());

  Arss1Reconstructor rec(cs_, f());
  std::optional<Bytes> out;
  std::size_t fed = 0;
  for (const auto& s : shares) {
    out = rec.add(s);
    ++fed;
    if (out) break;
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, secret_);
  EXPECT_EQ(fed, f() + 1);  // recovers as soon as t shares arrive
  EXPECT_TRUE(rec.done());
}

TEST_P(ArssTest, Arss1RecoversUnderEveryCorruptionPattern) {
  const auto shares = arss1_share(secret_, f() + 1, n(), cs_, rng_);

  // Every way of choosing f corrupted holders among the first 2f+1 senders.
  for_each_combination(2 * f() + 1, f(), [&](std::span<const std::size_t> bad) {
    Arss1Reconstructor rec(cs_, f());
    std::optional<Bytes> out;
    for (std::size_t i = 0; i < 2 * f() + 1 && !out; ++i) {
      Arss1Share s = shares[i];
      if (std::find(bad.begin(), bad.end(), i) != bad.end()) {
        s.inner.values[0] = s.inner.values[0] + Fe(1 + i);  // corrupted value
      }
      out = rec.add(s);
    }
    EXPECT_TRUE(out.has_value());
    EXPECT_EQ(*out, secret_);
    return false;
  });
}

TEST_P(ArssTest, Arss1AdversaryCannotForceWrongSecret) {
  const auto shares = arss1_share(secret_, f() + 1, n(), cs_, rng_);
  // All-corrupt-first arrival order: the reconstructor must not be fooled
  // into opening a wrong value; it waits for honest shares.
  Arss1Reconstructor rec(cs_, f());
  std::optional<Bytes> out;
  for (uint32_t i = 0; i < f(); ++i) {
    Arss1Share s = shares[i];
    for (auto& v : s.inner.values) v = v + Fe(7);
    out = rec.add(s);
    EXPECT_FALSE(out.has_value());
  }
  for (uint32_t i = f(); i < 2 * f() + 1 && !out; ++i) out = rec.add(shares[i]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, secret_);
}

TEST_P(ArssTest, Arss1ExpectedCommitmentFiltersForeignShares) {
  const auto good = arss1_share(secret_, f() + 1, n(), cs_, rng_);
  const auto evil = arss1_share(to_bytes("derived request"), f() + 1, n(), cs_, rng_);

  Arss1Reconstructor rec(cs_, f(), good[0].commitment);
  std::optional<Bytes> out;
  // Feed a full set of shares for a DIFFERENT secret first: all rejected.
  for (const auto& s : evil) {
    EXPECT_FALSE(rec.add(s).has_value());
  }
  for (const auto& s : good) {
    out = rec.add(s);
    if (out) break;
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, secret_);
}

TEST_P(ArssTest, Arss1GenericModeDropsCompetingSetsOnceFull) {
  const auto good = arss1_share(secret_, f() + 1, n(), cs_, rng_);
  const auto evil = arss1_share(to_bytes("other"), f() + 1, n(), cs_, rng_);

  Arss1Reconstructor rec(cs_, f());
  // Deliver t honest shares -> recovery. Competing sets never matter.
  std::optional<Bytes> out;
  for (uint32_t i = 0; i <= f(); ++i) out = rec.add(good[i]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, secret_);
  // After done(), everything is ignored.
  EXPECT_FALSE(rec.add(evil[0]).has_value());
}

TEST_P(ArssTest, Arss1IgnoresDuplicateIndices) {
  const auto shares = arss1_share(secret_, f() + 1, n(), cs_, rng_);
  Arss1Reconstructor rec(cs_, f());
  if (f() == 0) GTEST_SKIP();
  EXPECT_FALSE(rec.add(shares[0]).has_value());
  EXPECT_FALSE(rec.add(shares[0]).has_value());
  EXPECT_EQ(rec.shares_received(), 1u);
}

TEST_P(ArssTest, Arss1SerializeRoundTrip) {
  const auto shares = arss1_share(secret_, f() + 1, n(), cs_, rng_);
  for (const auto& s : shares) {
    const auto parsed = Arss1Share::parse(s.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->commitment, s.commitment);
    EXPECT_EQ(parsed->inner, s.inner);
  }
  EXPECT_FALSE(Arss1Share::parse(Bytes{1, 2, 3}).has_value());
}

// --- ARSS2 ---

TEST_P(ArssTest, Arss2HonestRecovery) {
  const auto shares = arss2_share(secret_, f(), n(), rng_);
  ASSERT_EQ(shares.size(), n());

  // The CP3 deployment: reconstructor holds share[0].
  Arss2Reconstructor rec(f(), shares[0]);
  std::optional<Bytes> out;
  std::size_t fed = 0;
  for (uint32_t i = 1; i < n() && !out; ++i) {
    out = rec.add(shares[i]);
    ++fed;
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, secret_);
  EXPECT_EQ(fed, f() + 1);  // own + f+1 others = f+2 total
}

TEST_P(ArssTest, Arss2RecoversUnderEveryCorruptionPattern) {
  const auto shares = arss2_share(secret_, f(), n(), rng_);

  // Adversary corrupts f of the 2f+1 foreign senders, any pattern; the
  // reconstructor (holding its own share) must still recover the original.
  for_each_combination(2 * f() + 1, f(), [&](std::span<const std::size_t> bad) {
    Arss2Reconstructor rec(f(), shares[0]);
    std::optional<Bytes> out;
    for (std::size_t i = 0; i < 2 * f() + 1 && !out; ++i) {
      ShamirShare s = shares[1 + i];
      if (std::find(bad.begin(), bad.end(), i) != bad.end()) {
        for (auto& v : s.values) v = v + Fe(13 + i);
      }
      out = rec.add(s);
    }
    EXPECT_TRUE(out.has_value());
    EXPECT_EQ(*out, secret_);
    return false;
  });
}

TEST_P(ArssTest, Arss2CorruptFirstArrivalsDelayButDontDefeat) {
  if (f() == 0) GTEST_SKIP();
  const auto shares = arss2_share(secret_, f(), n(), rng_);
  Arss2Reconstructor rec(f(), shares[0]);
  std::optional<Bytes> out;
  // f randomly-corrupted shares arrive first (value-dependent garbling, the
  // paper's "randomly corrupt replicas" model — see the DeltaShift tests
  // below for the colluding-cheater case).
  for (uint32_t i = 0; i < f(); ++i) {
    ShamirShare s = shares[1 + i];
    for (auto& v : s.values) v = v * Fe(3) + Fe(1 + i);
    out = rec.add(s);
    EXPECT_FALSE(out.has_value());
  }
  // Honest shares then arrive.
  uint32_t honest_fed = 0;
  for (uint32_t i = f(); !out && 1 + i < n(); ++i) {
    out = rec.add(shares[1 + i]);
    ++honest_fed;
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, secret_);
  EXPECT_GE(rec.attempts(), 1u);
}

TEST_P(ArssTest, Arss2WithoutOwnShare) {
  // Client-side reconstruction (no trusted anchor): honest shares only.
  const auto shares = arss2_share(secret_, f(), n(), rng_);
  Arss2Reconstructor rec(f());
  std::optional<Bytes> out;
  for (uint32_t i = 0; i < n() && !out; ++i) out = rec.add(shares[i]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, secret_);
}

TEST_P(ArssTest, Arss2IgnoresDuplicatesAndDoneState) {
  const auto shares = arss2_share(secret_, f(), n(), rng_);
  Arss2Reconstructor rec(f(), shares[0]);
  EXPECT_FALSE(rec.add(shares[0]).has_value());  // duplicate of own
  std::optional<Bytes> out;
  for (uint32_t i = 1; i < n() && !out; ++i) out = rec.add(shares[i]);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(rec.done());
  EXPECT_FALSE(rec.add(shares[n() - 1]).has_value());
}

// --- The colluding-cheater (Delta-shift) attack on ARSS2's fast rule ---
//
// Cheaters shift their shares by Delta(x_i), where Delta is a degree-<=f
// polynomial with roots at the reconstructor's index and at f-1 chosen
// honest indices.  The first (f+2)-subset the reconstructor tests —
// {own, cheaters..., the chosen honest share} — is then consistent but
// reconstructs P + Delta.  The paper's rule (kFast) is defeated; the
// quorum rule (kRobust) is not.  See arss.h and DESIGN.md.

std::vector<ShamirShare> delta_shift_corrupt(
    const std::vector<ShamirShare>& shares, uint32_t f, uint32_t own_index,
    std::span<const uint32_t> honest_roots) {
  // Delta(x) = (x - own) * prod (x - root), degree 1 + (f-1) = f.
  auto delta_at = [&](Fe x) {
    Fe d = x - Fe(own_index);
    for (uint32_t r : honest_roots) d = d * (x - Fe(r));
    return d;
  };
  std::vector<ShamirShare> corrupted;
  for (uint32_t i = 0; i < f; ++i) {
    ShamirShare s = shares[1 + i];  // cheaters hold indices 2..f+1
    const Fe shift = delta_at(Fe(s.index));
    for (auto& v : s.values) v = v + shift;
    corrupted.push_back(std::move(s));
  }
  return corrupted;
}

TEST_P(ArssTest, Arss2DeltaShiftCollusionDefeatsFastMode) {
  if (f() < 2) GTEST_SKIP() << "attack needs f >= 2 (f-1 >= 1 chosen roots)";
  const auto shares = arss2_share(secret_, f(), n(), rng_);

  // Cheaters pick honest indices f+2 .. 2f as Delta roots (f-1 of them) and
  // rush their shares plus the chosen honest share(s) to the reconstructor.
  std::vector<uint32_t> roots;
  for (uint32_t r = f() + 2; r <= 2 * f(); ++r) roots.push_back(r);
  const auto corrupted = delta_shift_corrupt(shares, f(), 1, roots);

  Arss2Reconstructor rec(f(), shares[0], Arss2Mode::kFast);
  std::optional<Bytes> out;
  for (const auto& s : corrupted) out = rec.add(s);
  for (uint32_t r : roots) {
    if (!out) out = rec.add(shares[r - 1]);
  }
  ASSERT_TRUE(out.has_value()) << "poisoned subset should look consistent";
  EXPECT_NE(*out, secret_) << "kFast accepted a forged polynomial";
}

TEST_P(ArssTest, Arss2RobustModeResistsDeltaShiftCollusion) {
  if (f() < 2) GTEST_SKIP();
  const auto shares = arss2_share(secret_, f(), n(), rng_);
  std::vector<uint32_t> roots;
  for (uint32_t r = f() + 2; r <= 2 * f(); ++r) roots.push_back(r);
  const auto corrupted = delta_shift_corrupt(shares, f(), 1, roots);

  Arss2Reconstructor rec(f(), shares[0], Arss2Mode::kRobust);
  std::optional<Bytes> out;
  for (const auto& s : corrupted) {
    out = rec.add(s);
    EXPECT_FALSE(out.has_value());
  }
  for (uint32_t r : roots) {
    out = rec.add(shares[r - 1]);
    EXPECT_FALSE(out.has_value()) << "forged curve must not reach quorum";
  }
  // Remaining honest shares arrive; the true polynomial reaches 2f+1.
  for (uint32_t i = 1; i < n() && !out; ++i) {
    const auto& s = shares[i];
    bool already = s.index <= f() + 1;  // cheater indices were consumed
    for (uint32_t r : roots) already = already || s.index == r;
    if (already) continue;
    out = rec.add(s);
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, secret_);
}

TEST_P(ArssTest, Arss2RobustModeHonestPathStillWorks) {
  const auto shares = arss2_share(secret_, f(), n(), rng_);
  Arss2Reconstructor rec(f(), shares[0], Arss2Mode::kRobust);
  std::optional<Bytes> out;
  for (uint32_t i = 1; i < n() && !out; ++i) out = rec.add(shares[i]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, secret_);
  // Quorum rule: needs own + 2f more shares.
  EXPECT_EQ(rec.shares_received(), 2 * f() + 1);
}

INSTANTIATE_TEST_SUITE_P(FaultLevels, ArssTest, ::testing::Values(1u, 2u, 3u),
                         [](const auto& info) {
                           return "f" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------

TEST(ArssCost, Arss2NeedsMoreSharesThanArss1) {
  // The paper's explanation for CP2 > CP3 throughput: ARSS2 requires f+2
  // shares in the failure-free case where ARSS1 needs only f+1.
  crypto::Drbg rng(to_bytes("cost"));
  const Commitment cs(Commitment::cgen(rng));
  const Bytes secret = to_bytes("hello");
  const uint32_t f = 2, n = 7;

  const auto s1 = arss1_share(secret, f + 1, n, cs, rng);
  Arss1Reconstructor r1(cs, f);
  std::size_t need1 = 0;
  for (const auto& s : s1) {
    ++need1;
    if (r1.add(s)) break;
  }

  const auto s2 = arss2_share(secret, f, n, rng);
  Arss2Reconstructor r2(f, s2[0]);
  std::size_t need2 = 1;  // own share
  for (uint32_t i = 1; i < n; ++i) {
    ++need2;
    if (r2.add(s2[i])) break;
  }
  EXPECT_EQ(need1, f + 1);
  EXPECT_EQ(need2, f + 2);
  EXPECT_LT(need1, need2);
}

}  // namespace
}  // namespace scab::secretshare
