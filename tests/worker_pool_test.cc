// The crypto worker-pool seam (host/worker_pool.h, DESIGN.md §12):
//
//  * the default (inline) submit runs job then continuation synchronously
//    on the caller — the sequencing the deterministic simulator keeps;
//  * rt::ThreadHost's real pool runs jobs on pool threads but posts every
//    continuation back to the OWNER's sequential executor — the invariant
//    that keeps protocol objects lock-free;
//  * unbind (node crash) while a job is in flight drops the completion,
//    exactly like an in-flight message to a crashed node — and a rebound
//    incarnation under the same id must NOT receive completions from its
//    predecessor's jobs (the bind-generation guard);
//  * stop() racing concurrent submitters neither hangs nor crashes;
//  * the metrics shards pool threads record into are striped per thread
//    (obs::Histogram::thread_shard_slot), so concurrent recorders land on
//    distinct cache lines and no sample is lost in the aggregation.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "host/worker_pool.h"
#include "obs/metrics.h"
#include "rt/runtime.h"

namespace scab {
namespace {

/// Minimal owner endpoint: the pool contract only needs a bound node whose
/// executor receives the continuations.
struct Sink final : host::Node {
  void on_message(host::NodeId, BytesView) override {}
};

/// Polls `pred` for up to 5 s.  The pool has no flush(); completion is
/// observable only through the owner's executor side effects.
template <typename Pred>
bool eventually(Pred&& pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(WorkerPoolInline, DefaultRunsJobThenContinuationSynchronously) {
  struct InlinePool final : host::WorkerPool {};
  InlinePool pool;
  EXPECT_EQ(pool.pool_threads(), 0u);

  std::vector<int> order;
  pool.submit(1, [&order]() -> std::function<void()> {
    order.push_back(1);  // job body
    return [&order] { order.push_back(2); };
  });
  // Caller IS the owner's executor: both halves already ran, in order.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(WorkerPoolInline, EmptyJobAndEmptyContinuationAreNoOps) {
  struct InlinePool final : host::WorkerPool {};
  InlinePool pool;
  pool.submit(1, nullptr);  // must not crash
  bool ran = false;
  pool.submit(1, [&ran]() -> std::function<void()> {
    ran = true;
    return nullptr;  // nothing to post back
  });
  EXPECT_TRUE(ran);
}

TEST(WorkerPoolThreads, ZeroThreadsRunsInlineOnCaller) {
  rt::ThreadHost host(nullptr, nullptr, /*pool_threads=*/0);
  EXPECT_EQ(host.pool_threads(), 0u);
  Sink sink;
  host.bind(1, &sink);
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> same_thread{false};
  host.submit(1, [&same_thread, caller]() -> std::function<void()> {
    const bool job_inline = std::this_thread::get_id() == caller;
    return [&same_thread, job_inline, caller] {
      same_thread = job_inline && std::this_thread::get_id() == caller;
    };
  });
  EXPECT_TRUE(same_thread.load());
  host.stop();
}

TEST(WorkerPoolThreads, CompletionsRunSequentiallyOnOwnerExecutor) {
  rt::ThreadHost host(nullptr, nullptr, /*pool_threads=*/4);
  EXPECT_EQ(host.pool_threads(), 4u);
  Sink sink;
  host.bind(1, &sink);

  constexpr int kJobs = 64;
  // Written ONLY from continuations.  If every continuation really runs on
  // node 1's sequential executor these need no synchronization; TSan is
  // the second half of this assertion (tests/CMakePresets tsan preset).
  struct State {
    int completed = 0;
    std::set<std::thread::id> continuation_threads;
    std::set<std::thread::id> job_threads_seen_by_cont;
  };
  auto st = std::make_shared<State>();
  std::atomic<int> done{0};

  // submit() from the owner's own executor, per the contract.
  host.post(1, [&host, st, &done] {
    for (int i = 0; i < kJobs; ++i) {
      host.submit(1, [st, &done]() -> std::function<void()> {
        const auto job_tid = std::this_thread::get_id();
        return [st, &done, job_tid] {
          st->continuation_threads.insert(std::this_thread::get_id());
          st->job_threads_seen_by_cont.insert(job_tid);
          ++st->completed;
          done.fetch_add(1, std::memory_order_release);
        };
      });
    }
  });

  ASSERT_TRUE(eventually([&] {
    return done.load(std::memory_order_acquire) == kJobs;
  }));
  host.stop();  // joins: State is now quiescent
  EXPECT_EQ(st->completed, kJobs);
  // All continuations on ONE thread (the owner's worker)...
  EXPECT_EQ(st->continuation_threads.size(), 1u);
  // ...which is not a pool thread: with 4 pool workers and 64 jobs, at
  // least one job ran off the owner's thread.
  EXPECT_GT(st->job_threads_seen_by_cont.size(), 0u);
  EXPECT_EQ(st->job_threads_seen_by_cont.count(
                *st->continuation_threads.begin()),
            0u);
}

/// Copyable gate a PoolJob can park on (PoolJob is a std::function, so
/// captures must be copyable — hence shared_ptr state).
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  void release() {
    std::lock_guard<std::mutex> lk(mu);
    open = true;
    cv.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [this] { return open; });
  }
};

TEST(WorkerPoolThreads, UnbindDropsInFlightCompletions) {
  rt::ThreadHost host(nullptr, nullptr, /*pool_threads=*/2);
  Sink sink;
  host.bind(1, &sink);

  auto gate = std::make_shared<Gate>();
  auto started = std::make_shared<std::atomic<bool>>(false);
  auto executed = std::make_shared<std::atomic<bool>>(false);
  host.submit(1, [gate, started, executed]() -> std::function<void()> {
    started->store(true);
    gate->wait();  // hold the job in flight until after the unbind
    return [executed] { executed->store(true); };
  });
  ASSERT_TRUE(eventually([&] { return started->load(); }));

  host.unbind(1);  // node crash: bumps the bind generation
  gate->release();

  // The completion must be discarded, not delivered to a dead node.  Give
  // the pool ample time to (wrongly) deliver before asserting.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(executed->load());
  host.stop();
}

TEST(WorkerPoolThreads, RebindDoesNotReceivePredecessorsCompletions) {
  rt::ThreadHost host(nullptr, nullptr, /*pool_threads=*/2);
  Sink incarnation_a;
  host.bind(1, &incarnation_a);

  auto gate = std::make_shared<Gate>();
  auto started = std::make_shared<std::atomic<bool>>(false);
  auto stale_executed = std::make_shared<std::atomic<bool>>(false);
  host.submit(1, [gate, started, stale_executed]() -> std::function<void()> {
    started->store(true);
    gate->wait();
    return [stale_executed] { stale_executed->store(true); };
  });
  ASSERT_TRUE(eventually([&] { return started->load(); }));

  // Restart under the same id (what Cluster::restart_replica rides on).
  host.unbind(1);
  Sink incarnation_b;
  host.bind(1, &incarnation_b);
  gate->release();

  // The NEW incarnation's own pool traffic must flow normally...
  std::atomic<bool> fresh_executed{false};
  host.submit(1, [&fresh_executed]() -> std::function<void()> {
    return [&fresh_executed] { fresh_executed.store(true); };
  });
  ASSERT_TRUE(eventually([&] { return fresh_executed.load(); }));
  // ...while the predecessor's completion stays dropped.
  EXPECT_FALSE(stale_executed->load());
  host.stop();
}

TEST(WorkerPoolThreads, StopRacingSubmittersDoesNotHangOrCrash) {
  for (int round = 0; round < 8; ++round) {
    auto host = std::make_unique<rt::ThreadHost>(nullptr, nullptr, 2);
    Sink sink;
    host->bind(1, &sink);
    std::atomic<bool> quit{false};
    std::thread submitter([&] {
      while (!quit.load(std::memory_order_relaxed)) {
        host->submit(1, []() -> std::function<void()> {
          return [] { /* completion may or may not run; must not crash */ };
        });
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(round));
    host->stop();  // races the submitter mid-push
    quit.store(true);
    submitter.join();
    host.reset();  // destruction after stop must be clean too
  }
}

TEST(WorkerPoolSharding, HistogramShardSlotsAreStablePerThreadAndDistinct) {
  constexpr int kThreads = 8;  // == Histogram's shard count
  std::vector<std::size_t> slot(kThreads);
  // int, not bool: vector<bool> packs bits, and concurrent writers to
  // adjacent elements would race on the shared byte.
  std::vector<int> stable(kThreads, 0);
  std::vector<std::thread> threads;
  obs::Histogram hist;
  constexpr int kSamplesPerThread = 1000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &slot, &stable, &hist] {
      slot[t] = obs::Histogram::thread_shard_slot();
      // Stable across calls and across record() traffic on this thread.
      bool ok = true;
      for (int i = 0; i < kSamplesPerThread; ++i) {
        hist.record(static_cast<uint64_t>(i + 1));
        ok = ok && obs::Histogram::thread_shard_slot() == slot[t];
      }
      stable[t] = ok;
    });
  }
  for (auto& th : threads) th.join();

  // Slots are assigned round-robin by first touch, so 8 fresh threads get
  // 8 DISTINCT slots (mod 8) — every concurrent recorder on its own
  // cache-line-aligned shard, which is the contention structure that makes
  // pool-thread metrics cheap.
  std::set<std::size_t> distinct(slot.begin(), slot.end());
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(stable[t]) << "thread " << t << " changed shard mid-life";
    EXPECT_LT(slot[t], 8u);
  }
  // Aggregation across shards loses nothing.
  EXPECT_EQ(hist.count(),
            static_cast<uint64_t>(kThreads) * kSamplesPerThread);
  EXPECT_EQ(hist.min(), 1u);
  EXPECT_EQ(hist.max(), static_cast<uint64_t>(kSamplesPerThread));
}

}  // namespace
}  // namespace scab
