#!/usr/bin/env bash
# Multi-process cluster smoke: keygen -> n scabd processes (durability =
# fsync, so every replica keeps a WAL + snapshots on disk) -> three
# scab-client phases with a kill -9 + restart in between -> metrics dumps
# validated with scab-metrics-check -> a full-cluster power loss (kill -9
# of EVERY replica mid-traffic, restart all from their data directories).
#
# Asserts, end to end over real TCP:
#   * every phase's ops commit (no loss; scab-client exits non-zero on
#     an incomplete closed loop);
#   * a surviving replica executed EXACTLY the total op count (no
#     duplication — replica-side dedup would be the broken piece);
#   * the kill -9'd replica, restarted as a fresh process, caught up via
#     the checkpoint protocol (bft.recovery.catchups_completed >= 1) and
#     converged to the same executed count;
#   * after the power loss, every replica recovered from snapshot + WAL
#     (bft.recovery.snapshot_loaded >= 1, required_durability section) and
#     converged to EXACTLY the grand-total count — nothing lost, nothing
#     re-executed;
#   * every dump is schema-valid JSON (required_daemon section).
#
# Env knobs: BUILD (build dir, default ./build), PROTOCOL (default cp0),
# F (default 1), SEED, BASE_PORT (default: randomized in 20000..60000).
# Exit 77 = sockets unavailable in this environment (ctest SKIP).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${BUILD:-build}"
BIN="$BUILD/src/daemon"
PROTOCOL="${PROTOCOL:-cp0}"
F="${F:-1}"
N=$((3 * F + 1))
SEED="${SEED:-42}"
BASE_PORT="${BASE_PORT:-$((20000 + RANDOM % 40000))}"
OPS_A=20 OPS_B=20 OPS_C=40 OPS_D=60
TOTAL=$((OPS_A + OPS_B + OPS_C))
GRAND_TOTAL=$((TOTAL + OPS_D))
# CP1 runs each logical op as two BFT requests (commit + reveal).
EXPECTED=$TOTAL
EXPECTED_D=$GRAND_TOTAL
if [ "$PROTOCOL" = "cp1" ]; then
  EXPECTED=$((2 * TOTAL))
  EXPECTED_D=$((2 * GRAND_TOTAL))
fi

for tool in scabd scab-client scab-keygen scab-metrics-check; do
  if [ ! -x "$BIN/$tool" ]; then
    echo "run_cluster: $BIN/$tool not built (cmake --build --preset default)" >&2
    exit 1
  fi
done

"$BIN/scabd" --probe || exit 77

DIR="$(mktemp -d)"
declare -a PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

# durability=fsync + a data dir: replicas WAL every acceptance/execution
# and snapshot at stable checkpoints, which is what phase D recovers from.
"$BIN/scab-keygen" --f "$F" --protocol "$PROTOCOL" --seed "$SEED" \
  --base-port "$BASE_PORT" --clients 4 --checkpoint-interval 8 \
  --durability fsync --data-dir data --out "$DIR"

start_replica() {
  local i=$1
  "$BIN/scabd" --config "$DIR/cluster.conf" --replica "$i" \
    --metrics-out "$DIR/metrics-$i.json" 2>>"$DIR/scabd-$i.log" &
  PIDS[$i]=$!
}

for i in $(seq 0 $((N - 1))); do start_replica "$i"; done
sleep 0.5
for i in $(seq 0 $((N - 1))); do
  if ! kill -0 "${PIDS[$i]}" 2>/dev/null; then
    echo "run_cluster: replica $i died at startup:" >&2
    cat "$DIR/scabd-$i.log" >&2
    # A bind failure on the randomized port range most likely means the
    # sandbox forbids sockets (the --probe above passed, so a plain port
    # clash is possible but rare); treat as a hard failure, not a skip —
    # the probe is the skip oracle.
    exit 1
  fi
done

run_client() { # <id> <ops>
  "$BIN/scab-client" --config "$DIR/cluster.conf" --id "$1" --ops "$2" \
    --timeout-s 120
}

echo "== phase A: $OPS_A ops against the full cluster"
run_client 100 "$OPS_A"

echo "== phase B: kill -9 replica $((N - 1)), $OPS_B ops with one replica down"
kill -9 "${PIDS[$((N - 1))]}"
run_client 101 "$OPS_B"

echo "== phase C: restart replica $((N - 1)), $OPS_C ops"
start_replica $((N - 1))
run_client 102 "$OPS_C"

echo "== validating metrics dumps"
# The restarted replica finishes catch-up asynchronously; poll its dump.
CAUGHT_UP=0
for attempt in $(seq 1 40); do
  kill -USR1 "${PIDS[$((N - 1))]}" 2>/dev/null || true
  sleep 0.25
  if [ -f "$DIR/metrics-$((N - 1)).json" ] &&
     "$BIN/scab-metrics-check" "$DIR/metrics-$((N - 1)).json" \
       --schema bench/metrics_schema.json --section required_daemon \
       --min metrics/counters/bft.recovery.catchups_completed=1 \
       >/dev/null 2>&1; then
    CAUGHT_UP=1
    break
  fi
done
if [ "$CAUGHT_UP" != 1 ]; then
  echo "run_cluster: restarted replica never completed a checkpoint catch-up" >&2
  "$BIN/scab-metrics-check" "$DIR/metrics-$((N - 1)).json" \
    --schema bench/metrics_schema.json --section required_daemon \
    --min metrics/counters/bft.recovery.catchups_completed=1 || true
  exit 1
fi
"$BIN/scab-metrics-check" "$DIR/metrics-$((N - 1)).json" \
  --schema bench/metrics_schema.json --section required_daemon \
  --min metrics/histograms/bft.recovery.catchup_ms/count=1

# Survivors: exact execution count = no lost and no duplicated requests.
for i in $(seq 0 $((N - 2))); do
  kill -USR1 "${PIDS[$i]}"
done
sleep 0.5
for i in $(seq 0 $((N - 2))); do
  "$BIN/scab-metrics-check" "$DIR/metrics-$i.json" \
    --schema bench/metrics_schema.json --section required_daemon \
    --eq metrics/counters/bft.requests_executed=$EXPECTED
done

echo "== phase D: power loss — kill -9 ALL replicas mid-traffic, restart all"
# The client keeps retrying across the outage; the replicas come back as
# brand-new processes whose only state is the data directory.
"$BIN/scab-client" --config "$DIR/cluster.conf" --id 103 --ops "$OPS_D" \
  --timeout-s 120 &
CLIENT_PID=$!
sleep 0.3
for i in $(seq 0 $((N - 1))); do kill -9 "${PIDS[$i]}" 2>/dev/null || true; done
sleep 0.5
for i in $(seq 0 $((N - 1))); do start_replica "$i"; done
if ! wait "$CLIENT_PID"; then
  echo "run_cluster: phase D client did not complete after the power loss" >&2
  exit 1
fi

# Every replica must converge to EXACTLY the grand total (fewer = loss,
# more = re-execution after recovery) having loaded its snapshot, with the
# durability instruments present (required_durability section).  Laggards
# finish WAL replay + catch-up asynchronously; poll like phase C.
for i in $(seq 0 $((N - 1))); do
  RECOVERED=0
  for attempt in $(seq 1 40); do
    kill -USR1 "${PIDS[$i]}" 2>/dev/null || true
    sleep 0.25
    if "$BIN/scab-metrics-check" "$DIR/metrics-$i.json" \
         --schema bench/metrics_schema.json --section required_durability \
         --eq metrics/counters/bft.requests_executed=$EXPECTED_D \
         --min metrics/counters/bft.recovery.snapshot_loaded=1 \
         >/dev/null 2>&1; then
      RECOVERED=1
      break
    fi
  done
  if [ "$RECOVERED" != 1 ]; then
    echo "run_cluster: replica $i did not recover exactly after the power loss" >&2
    "$BIN/scab-metrics-check" "$DIR/metrics-$i.json" \
      --schema bench/metrics_schema.json --section required_durability \
      --eq metrics/counters/bft.requests_executed=$EXPECTED_D \
      --min metrics/counters/bft.recovery.snapshot_loaded=1 || true
    exit 1
  fi
done

echo "== clean shutdown"
for i in $(seq 0 $((N - 1))); do kill -TERM "${PIDS[$i]}" 2>/dev/null || true; done
for i in $(seq 0 $((N - 1))); do
  if ! wait "${PIDS[$i]}"; then
    echo "run_cluster: replica $i did not exit cleanly on SIGTERM" >&2
    exit 1
  fi
done
PIDS=()

echo "run_cluster: OK — $GRAND_TOTAL ops, kill -9 + restart + catch-up + full-cluster power loss, protocol $PROTOCOL, n=$N"
