#!/usr/bin/env bash
# Full CI pipeline: default build + test suite, the bench_smoke metrics
# check, then the whole suite again under ASan + UBSan (the `sanitize`
# CMake preset).  Run from anywhere; ~a few minutes on a laptop.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "=== default build ==="
cmake --preset default
cmake --build --preset default -j"$JOBS"

echo "=== test suite ==="
ctest --test-dir build --output-on-failure -j"$JOBS"

# All JSON bench artifacts (BENCH_*.json) collect under build/bench/ —
# both the shell redirections below and the files the benches write
# themselves (via SCAB_BENCH_DIR) — so the source tree stays clean.
BENCH_DIR="build/bench"
mkdir -p "$BENCH_DIR"
export SCAB_BENCH_DIR="$BENCH_DIR"

echo "=== crypto microbench (batch-verification amortization) ==="
# Optimized build only: emits per-op ns for single vs batch verification at
# k in {4,16,64} and exits non-zero if batch at k=16 is not >=4x cheaper.
./build/bench/bench_micro_crypto > "$BENCH_DIR/BENCH_crypto.json"
cat "$BENCH_DIR/BENCH_crypto.json"

echo "=== parallel crypto bench (worker-pool scaling sweep) ==="
# TDH2 batch verification over the rt::ThreadHost worker pool at T in
# {1,2,4,8}; enforces >=3x speedup at 8 threads when the machine has >=8
# hardware threads, exit 77 (skip) otherwise.  Self-validates the record
# against the schema's required_parallel paths.
if ./build/bench/bench_parallel_crypto bench/metrics_schema.json \
     > "$BENCH_DIR/BENCH_parallel.json"; then
  cat "$BENCH_DIR/BENCH_parallel.json"
else
  rc=$?
  if [ "$rc" -eq 77 ]; then
    cat "$BENCH_DIR/BENCH_parallel.json"
    echo "parallel crypto gate skipped: fewer than 8 hardware threads"
  else
    exit "$rc"
  fi
fi

echo "=== pipeline bench (batched CP0 envelopes; writes BENCH_pipeline.json) ==="
# Full batch x inflight sweep on the calibrated-cost oracle; exits non-zero
# unless the best batched configuration at (near-)equal median latency is
# >= 5x the unbatched closed loop.
./build/bench/bench_peak_pipeline --json > /dev/null

echo "=== fig6 quick slice (writes BENCH_fig6_peak_throughput.json) ==="
# f=1 column only: keeps a fresh JSON trajectory artifact under $BENCH_DIR
# without paying for the full three-column sweep on every CI run.
./build/bench/bench_fig6_peak_throughput --json --quick > /dev/null

echo "=== bench smoke (metrics JSON vs schema + crypto bench artifact) ==="
./build/bench/bench_smoke bench/metrics_schema.json "$BENCH_DIR/BENCH_crypto.json"

echo "=== cluster smoke (multi-process scabd over loopback TCP) ==="
# keygen -> 4-process cluster -> load, kill -9, restart, catch-up, dump
# validation.  Exit 77 means the environment forbids sockets: skip, the
# in-process suites above already covered the protocol logic.
if ./scripts/run_cluster.sh; then
  :
else
  rc=$?
  if [ "$rc" -eq 77 ]; then
    echo "cluster smoke skipped: sockets unavailable"
  else
    exit "$rc"
  fi
fi

echo "=== chaos smoke (seeded fault schedules, fixed seeds, both runtimes) ==="
# Re-runs just the chaos/fault-injection suites as an explicit gate: the
# seeds are fixed in the tests, so a failure here is a real regression, not
# flakiness.  Budget is ~30 s (the threaded sweep dominates).
ctest --test-dir build --output-on-failure -j"$JOBS" -R "Chaos|Faults"

echo "=== durability smoke (WAL / snapshot storage + power-loss recovery) ==="
# The storage-layer unit suites (CRC framing, torn-tail truncation, bit-flip
# fuzz) plus the full-cluster crash/recovery drills on both runtimes.
ctest --test-dir build --output-on-failure -j"$JOBS" -R "Storage|Durability"

echo "=== sanitizer build (ASan + UBSan) ==="
cmake --preset sanitize
cmake --build --preset sanitize -j"$JOBS"

echo "=== test suite under sanitizers ==="
ctest --preset sanitize

echo "=== ThreadSanitizer build (rt::ThreadHost runtime) ==="
cmake --preset tsan
cmake --build --preset tsan -j"$JOBS"

echo "=== threaded-runtime tests under TSan ==="
# The tsan test preset filters to the runtime-equivalence, backoff,
# fault-injection, and threaded chaos suites: the crypto-heavy remainder is
# single-threaded and already covered by the ASan pass above.
ctest --preset tsan

echo "=== CI OK ==="
