#!/usr/bin/env bash
# Full CI pipeline: default build + test suite, the bench_smoke metrics
# check, then the whole suite again under ASan + UBSan (the `sanitize`
# CMake preset).  Run from anywhere; ~a few minutes on a laptop.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "=== default build ==="
cmake --preset default
cmake --build --preset default -j"$JOBS"

echo "=== test suite ==="
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "=== bench smoke (metrics JSON vs schema) ==="
./build/bench/bench_smoke bench/metrics_schema.json

echo "=== sanitizer build (ASan + UBSan) ==="
cmake --preset sanitize
cmake --build --preset sanitize -j"$JOBS"

echo "=== test suite under sanitizers ==="
ctest --preset sanitize

echo "=== CI OK ==="
